//! GPHAST: PHAST's linear sweep outsourced to the (simulated) GPU.
//!
//! Section VI: "the CPU remains responsible for computing the upward CH
//! trees. During initialization, we copy both `G↓` and the array of
//! distance labels to the GPU. To compute a tree from `s`, we first run the
//! CH search on the CPU and copy the search space (with less than 2 KB) to
//! the GPU. [...] The CPU starts, for each level `i`, a kernel on the GPU
//! [...] Each thread computes the distance label of exactly one vertex."
//!
//! Multi-tree mapping: "we assign threads to warps such that threads within
//! a warp work on the same vertices. [...] In particular, if we set
//! `k = 32`, all threads of a warp work on the same vertex" — here thread
//! `tid` handles vertex `start + tid / k`, tree `tid % k`.

use crate::coalesce::transactions;
use crate::device::{Device, DeviceBuffer, OutOfDeviceMemory};
use crate::profile::DeviceProfile;
use phast_core::{Phast, PhastEngine};
use phast_graph::{Vertex, Weight, INF};
use std::time::Duration;

/// Warp-instruction estimate per relaxation step (arc load, label load,
/// packed add, packed min).
const INSTR_PER_RELAX: u64 = 4;
/// Warp-instruction estimate for a thread's prologue + epilogue.
const INSTR_FIXED: u64 = 8;

/// Statistics of one GPHAST batch.
#[derive(Clone, Copy, Debug)]
pub struct GphastStats {
    /// Trees computed in the batch.
    pub k: usize,
    /// Device memory held by graph + labels (Table III's memory column).
    pub device_memory_bytes: usize,
    /// Simulated time of the whole batch (transfers + kernels).
    pub batch_time: Duration,
    /// Simulated time per tree.
    pub time_per_tree: Duration,
    /// Kernel launches in the batch (one per level, plus scatters).
    pub kernel_launches: u64,
    /// DRAM transactions in the batch.
    pub dram_transactions: u64,
    /// SIMT lane efficiency of the sweep kernels: active lane-iterations
    /// over issued lane-slots (`1.0` = no divergence). With `k = 32` every
    /// warp works on a single vertex and efficiency reaches 1 by
    /// construction — the paper's §VI observation.
    pub lane_efficiency: f64,
}

impl GphastStats {
    /// The batch statistics as a [`phast_obs::Report`] (the cost-model
    /// section of `phast_cli --stats`).
    pub fn report(&self, title: impl Into<String>) -> phast_obs::Report {
        let mut r = phast_obs::Report::new(title);
        r.push_count("trees_per_sweep", self.k as u64)
            .push_count("device_memory_bytes", self.device_memory_bytes as u64)
            .push_count("kernel_launches", self.kernel_launches)
            .push_count("dram_transactions", self.dram_transactions)
            .push_ratio("lane_efficiency", self.lane_efficiency)
            .push_time("batch_time", self.batch_time)
            .push_time("time_per_tree", self.time_per_tree);
        r
    }
}

/// The GPHAST solver: owns the device, the device-resident graph, and a
/// host-side engine for the upward searches.
pub struct Gphast<'p> {
    p: &'p Phast,
    device: Device,
    k: usize,
    d_first: DeviceBuffer<u32>,
    d_arcs: DeviceBuffer<phast_graph::csr::ReverseArc>,
    d_dist: DeviceBuffer<u32>,
    d_marked: DeviceBuffer<u8>,
    host: PhastEngine<'p>,
    sources: Vec<Vertex>,
    /// Divergence accounting for the current batch: lane-iterations that
    /// did useful work vs. issued warp-iterations × warp size.
    active_lane_iters: u64,
    issued_lane_slots: u64,
    /// Threads launched by each level kernel of the last batch
    /// (`level_size * k`), in sweep-level order.
    per_level_threads: Vec<usize>,
}

impl<'p> Gphast<'p> {
    /// Initializes the device and uploads `G↓` plus `k` label arrays.
    pub fn new(p: &'p Phast, profile: DeviceProfile, k: usize) -> Result<Self, OutOfDeviceMemory> {
        assert!(k >= 1, "need at least one tree per sweep");
        let n = p.num_vertices();
        let mut device = Device::new(profile);
        let mut d_first = device.alloc::<u32>(n + 1)?;
        let mut d_arcs = device.alloc(p.down().num_arcs())?;
        let d_dist = device.alloc::<u32>(n * k)?;
        let d_marked = device.alloc::<u8>(n)?;
        device.copy_to_device(&mut d_first, p.down().first());
        device.copy_to_device(&mut d_arcs, p.down().arcs());
        Ok(Self {
            p,
            device,
            k,
            d_first,
            d_arcs,
            d_dist,
            d_marked,
            host: p.engine(),
            sources: Vec::new(),
            active_lane_iters: 0,
            issued_lane_slots: 0,
            per_level_threads: Vec::new(),
        })
    }

    /// Threads launched per level kernel in the last batch — the paper's
    /// `(level size) × k` grid configuration, in sweep-level order. Empty
    /// before the first batch.
    pub fn per_level_threads(&self) -> &[usize] {
        &self.per_level_threads
    }

    /// Batch width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The simulated device (for cumulative statistics).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The PHAST instance.
    pub fn phast(&self) -> &'p Phast {
        self.p
    }

    /// Computes `k` trees (exactly `sources.len() == k`). Returns batch
    /// statistics; labels stay on the device until queried.
    pub fn run(&mut self, sources: &[Vertex]) -> GphastStats {
        assert_eq!(sources.len(), self.k, "batch must contain k sources");
        self.sources = sources.to_vec();
        self.active_lane_iters = 0;
        self.issued_lane_slots = 0;
        let before = *self.device.stats();

        // Phase 1 on the CPU: one upward search per source; copy each
        // search space to the device and scatter it into the label matrix.
        for (i, &s) in sources.iter().enumerate() {
            let space = self.host.upward_search(s);
            self.scatter_search_space(i, &space);
        }

        // Phase 2 on the GPU: one kernel per level.
        let ranges: Vec<std::ops::Range<u32>> = self.p.level_ranges().to_vec();
        self.per_level_threads.clear();
        for range in ranges {
            self.per_level_threads
                .push((range.end - range.start) as usize * self.k);
            self.level_kernel(range.start as usize, range.end as usize);
        }

        let after = *self.device.stats();
        let batch_time = after.total_time().saturating_sub(before.total_time());
        GphastStats {
            k: self.k,
            device_memory_bytes: self.device.allocated_bytes(),
            batch_time,
            time_per_tree: batch_time / self.k as u32,
            kernel_launches: after.kernel_launches - before.kernel_launches,
            dram_transactions: after.dram_transactions - before.dram_transactions,
            lane_efficiency: if self.issued_lane_slots == 0 {
                1.0
            } else {
                self.active_lane_iters as f64 / self.issued_lane_slots as f64
            },
        }
    }

    /// Uploads one tree's search space and runs the scatter kernel.
    fn scatter_search_space(&mut self, tree: usize, space: &[(Vertex, Weight)]) {
        // The transfer: (vertex, label) pairs, 8 bytes each — the "< 2 KB"
        // payload of Section VI.
        let mut staging = self.device.alloc::<(u32, u32)>(space.len().max(1)).ok();
        if let Some(buf) = staging.as_mut() {
            let raw: Vec<(u32, u32)> = space.iter().map(|&(v, d)| (v, d)).collect();
            self.device.copy_to_device(buf, &raw);
        }

        // Scatter kernel: one thread per search-space entry; on the first
        // touch of a vertex in this batch its whole row is reset to ∞.
        let k = self.k;
        let dist = self.d_dist.as_mut_slice();
        let marked = self.d_marked.as_mut_slice();
        let mut instructions = 0u64;
        let mut txns = 0u64;
        for chunk in space.chunks(32) {
            let mut addrs = Vec::with_capacity(chunk.len());
            for &(v, d) in chunk {
                let v = v as usize;
                if marked[v] == 0 {
                    dist[v * k..(v + 1) * k].fill(INF);
                    marked[v] = 1;
                    // Row fill traffic.
                    txns += (k as u64 * 4).div_ceil(128);
                }
                dist[v * k + tree] = d;
                addrs.push(((v * k + tree) * 4) as u64);
            }
            instructions += INSTR_FIXED * chunk.len() as u64 / 4 + 2;
            txns += u64::from(transactions(
                &addrs,
                4,
                self.device.profile().transaction_bytes,
            ));
        }
        self.device.charge_kernel(instructions.max(1), txns.max(1));
        if let Some(buf) = staging.take() {
            self.device.free(buf);
        }
    }

    /// Executes one level's kernel warp-synchronously, with full functional
    /// fidelity and per-warp divergence/coalescing accounting.
    fn level_kernel(&mut self, start: usize, end: usize) {
        let k = self.k;
        let warp = self.device.profile().warp_size as usize;
        let seg = self.device.profile().transaction_bytes;
        let first = self.d_first.as_slice();
        let arcs = self.d_arcs.as_slice();
        // Split borrows: labels and marks are written, graph is read-only.
        let dist = self.d_dist.data_ptr();
        let marked = self.d_marked.data_ptr();

        let threads = (end - start) * k;
        let mut instructions = 0u64;
        let mut txns = 0u64;
        let mut active_iters = 0u64;
        let mut issued_slots = 0u64;

        let mut acc = vec![INF; warp];
        let mut lane_v = vec![0usize; warp];
        let mut lane_t = vec![0usize; warp];
        let mut addrs: Vec<u64> = Vec::with_capacity(warp);

        let mut w0 = 0usize;
        while w0 < threads {
            let lanes = warp.min(threads - w0);
            let mut max_deg = 0usize;
            // Prologue: each lane loads its vertex's mark and (if set) its
            // own label; otherwise starts from ∞.
            addrs.clear();
            for l in 0..lanes {
                let tid = w0 + l;
                let v = start + tid / k;
                let t = tid % k;
                lane_v[l] = v;
                lane_t[l] = t;
                // SAFETY: v < n, slot < n*k; kernel runs single-threaded on
                // the host, the pointers are valid for the whole buffers.
                let m = unsafe { *marked.add(v) };
                acc[l] = if m != 0 {
                    // SAFETY: slot v*k+t < n*k (v < n, t < k).
                    unsafe { *dist.add(v * k + t) }
                } else {
                    INF
                };
                let deg = (first[v + 1] - first[v]) as usize;
                max_deg = max_deg.max(deg);
                addrs.push((v * k + t) as u64 * 4);
            }
            // Label reads + mark reads (one byte per lane's vertex).
            txns += u64::from(transactions(&addrs[..lanes], 4, seg));
            let mark_addrs: Vec<u64> = lane_v[..lanes].iter().map(|&v| v as u64).collect();
            txns += u64::from(transactions(&mark_addrs, 1, seg));

            // Predicated relaxation loop: the warp iterates to the maximum
            // degree; lanes whose vertex has fewer arcs sit idle (the
            // divergence cost of SIMT execution).
            for it in 0..max_deg {
                let mut arc_addrs: Vec<u64> = Vec::with_capacity(lanes);
                let mut load_addrs: Vec<u64> = Vec::with_capacity(lanes);
                issued_slots += warp as u64;
                for l in 0..lanes {
                    let v = lane_v[l];
                    let deg = (first[v + 1] - first[v]) as usize;
                    if it >= deg {
                        continue; // lane predicated off
                    }
                    active_iters += 1;
                    let ai = first[v] as usize + it;
                    let a = arcs[ai];
                    arc_addrs.push(ai as u64 * 8);
                    let slot = a.tail as usize * k + lane_t[l];
                    load_addrs.push(slot as u64 * 4);
                    // SAFETY: tail rows belong to earlier levels, final by
                    // the level-synchronous execution order.
                    let cand = unsafe { *dist.add(slot) } + a.weight;
                    if cand < acc[l] {
                        acc[l] = cand;
                    }
                }
                instructions += INSTR_PER_RELAX;
                txns += u64::from(transactions(&arc_addrs, 8, seg));
                txns += u64::from(transactions(&load_addrs, 4, seg));
            }

            // Epilogue: store the labels, clear the marks.
            addrs.clear();
            for l in 0..lanes {
                let slot = lane_v[l] * k + lane_t[l];
                // SAFETY: each slot is written by exactly one lane.
                unsafe { *dist.add(slot) = acc[l].min(INF) };
                if lane_t[l] == 0 || k == 1 {
                    // SAFETY: lane_v[l] < n; single-threaded host execution.
                    unsafe { *marked.add(lane_v[l]) = 0 };
                }
                addrs.push(slot as u64 * 4);
            }
            txns += u64::from(transactions(&addrs[..lanes], 4, seg));
            instructions += INSTR_FIXED;

            w0 += warp;
        }
        // Handle levels whose vertex count is zero threads (empty kernel
        // still costs a launch).
        self.active_lane_iters += active_iters;
        self.issued_lane_slots += issued_slots;
        self.device.charge_kernel(instructions.max(1), txns.max(1));
    }

    /// Copies tree `i`'s labels back to the host (charged as a PCIe
    /// transfer) in original vertex order.
    pub fn tree_distances(&mut self, i: usize) -> Vec<Weight> {
        assert!(i < self.k);
        let n = self.p.num_vertices();
        let k = self.k;
        // Device→host copy of the whole matrix row set would be n*k; a real
        // implementation copies the strided tree, which PCIe charges as n
        // labels.
        let mut sweep_labels = vec![INF; n];
        {
            let data = self.d_dist.as_slice();
            for v in 0..n {
                sweep_labels[v] = data[v * k + i];
            }
        }
        // Charge the device→host transfer explicitly.
        self.device.charge_dtoh((n * 4) as u64);
        self.p.labels_to_original(&sweep_labels)
    }

    /// Direct (free) access to the label matrix for verification and
    /// device-resident reductions — mirrors keeping results on the GPU.
    pub fn labels(&self) -> &[Weight] {
        self.d_dist.as_slice()
    }

    /// Sources of the last batch.
    pub fn sources(&self) -> &[Vertex] {
        &self.sources
    }
}

impl<T: Clone + Default> DeviceBuffer<T> {
    fn data_ptr(&mut self) -> *mut T {
        self.as_mut_slice().as_mut_ptr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    fn instance() -> (phast_graph::Graph, Phast) {
        let net = RoadNetworkConfig::new(16, 16, 3, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        (net.graph, p)
    }

    #[test]
    fn gphast_matches_dijkstra_k1() {
        let (g, p) = instance();
        let mut gp = Gphast::new(&p, DeviceProfile::gtx_580(), 1).unwrap();
        for s in [0u32, 9, 100] {
            let stats = gp.run(&[s]);
            assert!(stats.batch_time > Duration::ZERO);
            let want = shortest_paths(g.forward(), s).dist;
            assert_eq!(gp.tree_distances(0), want, "source {s}");
        }
    }

    #[test]
    fn gphast_matches_dijkstra_k16() {
        let (g, p) = instance();
        let mut gp = Gphast::new(&p, DeviceProfile::gtx_580(), 16).unwrap();
        let sources: Vec<Vertex> = (0..16).map(|i| i * 11 % 200).collect();
        let stats = gp.run(&sources);
        assert_eq!(stats.kernel_launches as usize, p.num_levels() + 16);
        for (i, &s) in sources.iter().enumerate() {
            let want = shortest_paths(g.forward(), s).dist;
            assert_eq!(gp.tree_distances(i), want, "tree {i}");
        }
    }

    #[test]
    fn gphast_agrees_with_cpu_multi_engine() {
        let (g, p) = instance();
        let _ = g;
        let mut cpu = p.multi_engine(8);
        let mut gpu = Gphast::new(&p, DeviceProfile::gtx_580(), 8).unwrap();
        let sources: Vec<Vertex> = (0..8).map(|i| i * 13 % 150).collect();
        cpu.run(&sources);
        gpu.run(&sources);
        assert_eq!(cpu.labels(), gpu.labels());
    }

    #[test]
    fn batching_amortizes_time_per_tree() {
        let (_, p) = instance();
        let mut g1 = Gphast::new(&p, DeviceProfile::gtx_580(), 1).unwrap();
        let mut g16 = Gphast::new(&p, DeviceProfile::gtx_580(), 16).unwrap();
        let s1 = g1.run(&[0]);
        let sources: Vec<Vertex> = (0..16).collect();
        let s16 = g16.run(&sources);
        assert!(
            s16.time_per_tree < s1.time_per_tree,
            "k=16 per-tree {:?} should beat k=1 {:?}",
            s16.time_per_tree,
            s1.time_per_tree
        );
    }

    #[test]
    fn memory_grows_linearly_with_k() {
        let (_, p) = instance();
        let g1 = Gphast::new(&p, DeviceProfile::gtx_580(), 1).unwrap();
        let g4 = Gphast::new(&p, DeviceProfile::gtx_580(), 4).unwrap();
        let n = p.num_vertices();
        assert_eq!(
            g4.device.allocated_bytes() - g1.device.allocated_bytes(),
            3 * n * 4
        );
    }

    #[test]
    fn out_of_memory_is_reported() {
        let (_, p) = instance();
        let mut tiny = DeviceProfile::gtx_580();
        tiny.memory_bytes = 1024; // absurdly small card
        assert!(Gphast::new(&p, tiny, 4).is_err());
    }

    #[test]
    fn engine_reusable_across_batches() {
        let (g, p) = instance();
        let mut gp = Gphast::new(&p, DeviceProfile::gtx_580(), 4).unwrap();
        for round in 0..3u32 {
            let sources: Vec<Vertex> = (0..4).map(|i| (round * 31 + i * 7) % 200).collect();
            gp.run(&sources);
            for (i, &s) in sources.iter().enumerate() {
                let want = shortest_paths(g.forward(), s).dist;
                assert_eq!(gp.tree_distances(i), want, "round {round} tree {i}");
            }
        }
    }

    #[test]
    fn degree_ordering_reduces_divergence_but_not_time() {
        // The §VI negative result: sorting vertices by degree within a
        // level makes warps uniform (lane efficiency up at k = 1) but
        // hurts the locality of the tail-label reads; the paper kept the
        // level order. Verify the efficiency direction and correctness.
        use phast_core::{PhastBuilder, SweepOrder};
        let net = RoadNetworkConfig::new(24, 24, 11, Metric::TravelTime).build();
        let p_level = Phast::preprocess(&net.graph);
        let p_degree = PhastBuilder::new()
            .order(SweepOrder::ByLevelThenDegree)
            .build(&net.graph);
        let mut g_level = Gphast::new(&p_level, DeviceProfile::gtx_580(), 1).unwrap();
        let mut g_degree = Gphast::new(&p_degree, DeviceProfile::gtx_580(), 1).unwrap();
        let s_level = g_level.run(&[3]);
        let s_degree = g_degree.run(&[3]);
        assert!(
            s_degree.lane_efficiency >= s_level.lane_efficiency,
            "degree sorting should reduce divergence: {} vs {}",
            s_degree.lane_efficiency,
            s_level.lane_efficiency
        );
        // Both orderings compute the same distances.
        assert_eq!(g_level.tree_distances(0), g_degree.tree_distances(0));
    }

    #[test]
    fn k32_has_no_divergence_within_vertices() {
        let (_, p) = instance();
        let mut gp = Gphast::new(&p, DeviceProfile::gtx_580(), 32).unwrap();
        let sources: Vec<Vertex> = (0..32).collect();
        let stats = gp.run(&sources);
        // k = 32: every warp works on one vertex, so every issued iteration
        // is active for all 32 lanes.
        assert!(
            (stats.lane_efficiency - 1.0).abs() < 1e-9,
            "k=32 must be divergence-free, got {}",
            stats.lane_efficiency
        );
    }

    #[test]
    fn gtx_480_is_slower_than_gtx_580() {
        let (_, p) = instance();
        let mut a = Gphast::new(&p, DeviceProfile::gtx_580(), 4).unwrap();
        let mut b = Gphast::new(&p, DeviceProfile::gtx_480(), 4).unwrap();
        let sa = a.run(&[0, 1, 2, 3]);
        let sb = b.run(&[0, 1, 2, 3]);
        assert!(sb.time_per_tree >= sa.time_per_tree);
    }
}
