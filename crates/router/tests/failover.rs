//! Differential tests of the failover path: a request caught by a dying
//! replica must be re-answered on a healthy one exactly once, with the
//! same tree Dijkstra computes; ejected replicas must rejoin through
//! the half-open door; and connections pooled before an ejection must be
//! drained, not reused.

use phast_core::HeteroAnswer;
use phast_dijkstra::dijkstra::shortest_paths;
use phast_graph::gen::{Metric, RoadNetworkConfig};
use phast_router::{HealthState, Router, RouterConfig};
use phast_serve::protocol::{decode_reply, Reply};
use phast_serve::scheduler::{ServeConfig, Service};
use phast_serve::Server;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn wait_until(what: &str, timeout: Duration, mut ok: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !ok() {
        assert!(t0.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn spawn_backend(net: &phast_graph::gen::RoadNetwork) -> Server {
    let svc = Service::for_graph(&net.graph, ServeConfig::default());
    Server::spawn(svc, "127.0.0.1:0").expect("backend bind")
}

/// A backend that accepts, reads one request line, then slams the
/// connection shut — the shape of a replica dying mid-request. Runs
/// until its listener is dropped by the OS at process exit (the accept
/// thread is detached; tests are short-lived).
fn spawn_flaky_backend() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("flaky bind");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                // Drop: RST/EOF toward the router mid-request.
            });
        }
    });
    addr
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
}

fn read_reply_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read reply");
    assert!(n > 0, "connection closed instead of replying");
    line.trim_end().to_owned()
}

#[test]
fn request_caught_by_dying_replica_fails_over_exactly_once() {
    let net = RoadNetworkConfig::new(6, 6, 3, Metric::TravelTime).build();
    let healthy = spawn_backend(&net);
    let flaky = spawn_flaky_backend();
    let router = Router::spawn(
        RouterConfig {
            // The flaky replica first: with everything healthy and idle,
            // least-inflight picking tries it before the real one.
            backends: vec![flaky, healthy.local_addr()],
            // Long interval: no probe interferes with the scripted
            // request ordering below.
            probe_interval: Duration::from_secs(3600),
            eject_after: 1,
            ..RouterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("router bind");

    let mut client = TcpStream::connect(router.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(client.try_clone().unwrap());
    send_line(&mut client, r#"{"id":7,"op":"tree","source":0}"#);
    let reply = read_reply_line(&mut reader);

    // Exactly one reply, carrying the client's id.
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v.get("id").and_then(|i| i.as_i64()), Some(7));
    let answer = match decode_reply(&reply).expect("decodable reply") {
        Reply::Answer(HeteroAnswer::Tree(dist)) => dist,
        other => panic!("expected a tree answer after failover, got {other:?}"),
    };
    // ... and it is the tree, not an approximation of it.
    let reference = shortest_paths(net.graph.forward(), 0);
    assert_eq!(answer, reference.dist, "failover reply must stay exact");

    // No duplicate reply follows (the failed attempt was not re-answered).
    client
        .set_read_timeout(Some(Duration::from_millis(150)))
        .unwrap();
    let mut probe_buf = [0u8; 1];
    match client.read(&mut probe_buf) {
        Ok(0) | Err(_) => {}
        Ok(_) => panic!("router sent a second reply for one request"),
    }

    let stats = router.stats();
    assert!(stats.failovers() >= 1, "the dying replica forced a failover");
    assert_eq!(stats.answered(), 1, "exactly one reply relayed");
    assert!(stats.ejections() >= 1, "eject_after=1 ejects on first fault");
    assert_eq!(
        router.pool().backends()[0].state(),
        HealthState::Ejected,
        "the flaky replica is out of rotation"
    );

    router.shutdown();
    healthy.shutdown();
}

#[test]
fn ejected_backend_rejoins_through_halfopen_and_pooled_conns_drain() {
    let net = RoadNetworkConfig::new(6, 6, 4, Metric::TravelTime).build();
    let first = spawn_backend(&net);
    let port = first.local_addr();
    let second = spawn_backend(&net);
    let router = Router::spawn(
        RouterConfig {
            backends: vec![port, second.local_addr()],
            probe_interval: Duration::from_millis(20),
            eject_after: 2,
            halfopen_after: Duration::from_millis(50),
            ..RouterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("router bind");

    // One long-lived client; its first requests seed pooled connections
    // to both replicas (least-inflight alternation over sequential
    // requests lands at least one request on backend 0).
    let mut client = TcpStream::connect(router.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let reference = shortest_paths(net.graph.forward(), 5);
    for _ in 0..4 {
        send_line(&mut client, r#"{"op":"tree","source":5}"#);
        let reply = read_reply_line(&mut reader);
        match decode_reply(&reply).expect("decodable") {
            Reply::Answer(HeteroAnswer::Tree(dist)) => assert_eq!(dist, reference.dist),
            other => panic!("expected tree, got {other:?}"),
        }
    }

    // Kill replica 0; the prober ejects it within a few intervals.
    first.shutdown();
    wait_until("ejection of the killed replica", Duration::from_secs(10), || {
        router.pool().backends()[0].state() == HealthState::Ejected
    });
    assert!(router.stats().ejections() >= 1);

    // Requests keep working on the survivor; the stale pooled connection
    // to replica 0 is drained (closed), never written into.
    let drained_before = router.stats().drained_conns();
    for _ in 0..3 {
        send_line(&mut client, r#"{"op":"tree","source":5}"#);
        let reply = read_reply_line(&mut reader);
        match decode_reply(&reply).expect("decodable") {
            Reply::Answer(HeteroAnswer::Tree(dist)) => assert_eq!(dist, reference.dist),
            other => panic!("expected tree during outage, got {other:?}"),
        }
    }

    // Revive a replica on the same port; the half-open door lets the
    // prober rediscover it.
    let revived = spawn_backend_on(&net, port);
    wait_until("half-open recovery", Duration::from_secs(10), || {
        router.pool().backends()[0].state() == HealthState::Healthy
    });
    assert!(router.stats().recoveries() >= 1, "recovery must be counted");

    // The same client connection keeps working after recovery; once
    // traffic lands on the revived replica again, the pre-ejection
    // pooled connection is detected stale and drained.
    wait_until("stale connection drain", Duration::from_secs(10), || {
        send_line(&mut client, r#"{"op":"tree","source":5}"#);
        let reply = read_reply_line(&mut reader);
        match decode_reply(&reply).expect("decodable") {
            Reply::Answer(HeteroAnswer::Tree(dist)) => assert_eq!(dist, reference.dist),
            other => panic!("expected tree after recovery, got {other:?}"),
        }
        router.stats().drained_conns() > drained_before
    });

    router.shutdown();
    second.shutdown();
    revived.shutdown();
}

fn spawn_backend_on(net: &phast_graph::gen::RoadNetwork, addr: SocketAddr) -> Server {
    let svc = Service::for_graph(&net.graph, ServeConfig::default());
    // SO_REUSEADDR (set by the std listener) admits the rebind while old
    // probe sockets linger in TIME_WAIT.
    Server::spawn(svc, addr).expect("rebind revived backend")
}

#[test]
fn no_healthy_backend_yields_a_typed_overloaded_reply() {
    // A port with nothing behind it: bind, learn the port, drop.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let router = Router::spawn(
        RouterConfig {
            backends: vec![dead],
            probe_interval: Duration::from_millis(10),
            eject_after: 1,
            halfopen_after: Duration::from_secs(3600),
            connect_timeout: Duration::from_millis(200),
            ..RouterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("router bind");
    wait_until("dead backend ejection", Duration::from_secs(10), || {
        router.pool().healthy() == 0
    });

    let mut client = TcpStream::connect(router.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(client.try_clone().unwrap());
    send_line(&mut client, r#"{"id":3,"op":"tree","source":0}"#);
    let reply = read_reply_line(&mut reader);
    match decode_reply(&reply).expect("decodable") {
        Reply::Error(e) => {
            assert_eq!(e.kind, phast_serve::ErrorKind::Overloaded);
            assert!(e.retry_after_ms.is_some(), "hint tells clients when to retry");
        }
        other => panic!("expected typed overloaded, got {other:?}"),
    }
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v.get("id").and_then(|i| i.as_i64()), Some(3));
    assert!(router.stats().no_backend() >= 1);

    router.shutdown();
}
