//! Router-level counters, exported in the `phast-obs` report schema so
//! the router's numbers line up with the backends' own `--stats` output.

use phast_obs::Report;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of one [`Router`](crate::Router) instance.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Request lines written to a backend (retries count again — this is
    /// dispatch work, not client demand).
    forwarded: AtomicU64,
    /// Reply lines relayed to clients (answers, stats, and non-retryable
    /// typed errors alike).
    answered: AtomicU64,
    /// Requests re-dispatched to another replica after a transport
    /// failure or a retryable typed reply.
    failovers: AtomicU64,
    /// Backends ejected from rotation by consecutive failures.
    ejections: AtomicU64,
    /// Ejected backends returned to rotation through the half-open door.
    recoveries: AtomicU64,
    /// Pooled backend connections closed instead of reused because their
    /// backend was ejected after they were opened (generation mismatch).
    drained_conns: AtomicU64,
    /// Requests whose every attempt failed; the client got the last
    /// typed error.
    retries_exhausted: AtomicU64,
    /// Requests that found no healthy backend at dispatch time and were
    /// answered with a typed `overloaded` error.
    no_backend: AtomicU64,
    /// Health probes sent.
    probes: AtomicU64,
    /// Health probes that failed (timeout, refused connection, garbage
    /// reply).
    probe_failures: AtomicU64,
}

macro_rules! bumpers {
    ($($(#[$doc:meta])* $name:ident => $field:ident),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(&self, n: u64) {
            self.$field.fetch_add(n, Ordering::Relaxed);
        }
    )*};
}

macro_rules! getters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(&self) -> u64 {
            self.$name.load(Ordering::Relaxed)
        }
    )*};
}

impl RouterStats {
    bumpers! {
        /// Counts request lines written to backends.
        add_forwarded => forwarded,
        /// Counts reply lines relayed to clients.
        add_answered => answered,
        /// Counts re-dispatches to another replica.
        add_failovers => failovers,
        /// Counts backend ejections.
        add_ejections => ejections,
        /// Counts backends recovered through the half-open door.
        add_recoveries => recoveries,
        /// Counts pooled connections drained on ejection.
        add_drained_conns => drained_conns,
        /// Counts requests that exhausted every attempt.
        add_retries_exhausted => retries_exhausted,
        /// Counts requests that found no healthy backend.
        add_no_backend => no_backend,
        /// Counts health probes sent.
        add_probes => probes,
        /// Counts failed health probes.
        add_probe_failures => probe_failures,
    }

    getters! {
        /// Request lines written to backends so far.
        forwarded,
        /// Reply lines relayed to clients so far.
        answered,
        /// Re-dispatches to another replica so far.
        failovers,
        /// Backend ejections so far.
        ejections,
        /// Half-open recoveries so far.
        recoveries,
        /// Pooled connections drained on ejection so far.
        drained_conns,
        /// Requests that exhausted every attempt so far.
        retries_exhausted,
        /// Requests that found no healthy backend so far.
        no_backend,
        /// Health probes sent so far.
        probes,
        /// Failed health probes so far.
        probe_failures,
    }

    /// Exports every counter as a `router_*`-prefixed report.
    pub fn report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(title);
        r.push_count("router_forwarded", self.forwarded())
            .push_count("router_answered", self.answered())
            .push_count("router_failovers", self.failovers())
            .push_count("router_ejections", self.ejections())
            .push_count("router_recoveries", self.recoveries())
            .push_count("router_drained_conns", self.drained_conns())
            .push_count("router_retries_exhausted", self.retries_exhausted())
            .push_count("router_no_backend", self.no_backend())
            .push_count("router_probes", self.probes())
            .push_count("router_probe_failures", self.probe_failures());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_carries_every_counter() {
        let s = RouterStats::default();
        s.add_failovers(2);
        s.add_ejections(1);
        s.add_drained_conns(3);
        s.add_retries_exhausted(4);
        let r = s.report("router");
        assert_eq!(
            r.get("router_failovers"),
            Some(&phast_obs::MetricValue::Count(2))
        );
        assert_eq!(
            r.get("router_ejections"),
            Some(&phast_obs::MetricValue::Count(1))
        );
        assert_eq!(
            r.get("router_drained_conns"),
            Some(&phast_obs::MetricValue::Count(3))
        );
        assert_eq!(
            r.get("router_retries_exhausted"),
            Some(&phast_obs::MetricValue::Count(4))
        );
    }
}
