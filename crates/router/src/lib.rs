//! A failover router in front of replicated `phast-serve` backends.
//!
//! One PHAST replica restarting (crash, deploy, metric re-preprocess)
//! should cost clients nothing but a few milliseconds of failover — not
//! errors, and certainly not wrong trees. This crate is the replication
//! front: a single TCP port speaking the same line-delimited JSON
//! protocol as `phast-serve`, spreading request lines across N backend
//! replicas and standing between clients and replica failure:
//!
//! * **Health checks** ([`backend`]): a prober thread sends each backend
//!   a cheap `{"op":"stats"}` probe on an interval. A backend failing
//!   [`RouterConfig::eject_after`] consecutive checks (or request-path
//!   transports) is *ejected* — no new requests route to it. After
//!   [`RouterConfig::halfopen_after`] it becomes *half-open*: the prober
//!   sends one trial probe, and a success returns it to rotation while a
//!   failure re-ejects it. Clients never probe; they only ever see
//!   healthy replicas.
//! * **Draining**: ejection bumps the backend's generation; pooled
//!   connections from older generations are closed instead of reused
//!   (`router_drained_conns`), so no request is ever written into a
//!   socket whose replica was declared dead.
//! * **Bounded failover** ([`front`]): a transport failure or a
//!   *retryable* typed reply (`overloaded`, `queue_full`, `busy`,
//!   `transport`) is re-dispatched to a different healthy replica, using
//!   the request's own `deadline_ms` as the total budget. Queries are
//!   idempotent reads, so a replayed request is answered exactly once —
//!   the first well-formed answer wins and nothing is duplicated.
//! * **Typed give-up**: when every attempt fails, the client gets the
//!   last typed error (never a silent close), and
//!   `router_retries_exhausted` counts it.
//!
//! Everything is observable through [`RouterStats`] — the `router_*`
//! counters (failovers, ejections, drained connections, exhausted
//! retries, …) exported in the same `phast-obs` report schema as the
//! backends' own stats.

pub mod backend;
pub mod front;
pub mod stats;

pub use backend::{Backend, BackendPool, HealthState};
pub use front::Router;
pub use stats::RouterStats;

use std::net::SocketAddr;
use std::time::Duration;

/// Tuning of one [`Router`]: backend set, health checking, failover.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// The backend replicas to spread load over.
    pub backends: Vec<SocketAddr>,
    /// Interval between health-check probes of each backend.
    pub probe_interval: Duration,
    /// Consecutive failed probes (or request-path transport failures)
    /// after which a backend is ejected from rotation.
    pub eject_after: u32,
    /// How long an ejected backend rests before the prober lets one
    /// trial probe through (the half-open recovery door).
    pub halfopen_after: Duration,
    /// TCP connect timeout toward backends.
    pub connect_timeout: Duration,
    /// Read/write timeout per socket operation, both sides.
    pub io_timeout: Duration,
    /// Re-dispatches allowed per request on top of the first attempt
    /// (each to a different replica when one is available).
    pub max_failovers: u32,
    /// Retry budget for a request that carries no `deadline_ms` of its
    /// own. With a deadline, the deadline is the budget.
    pub default_budget: Duration,
    /// Concurrent client connections accepted before `busy` refusals.
    pub max_conns: usize,
    /// Longest accepted request line in bytes.
    pub max_line_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            probe_interval: Duration::from_millis(100),
            eject_after: 3,
            halfopen_after: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            max_failovers: 3,
            default_budget: Duration::from_secs(5),
            max_conns: 256,
            max_line_bytes: 1 << 20,
        }
    }
}
