//! The TCP front: accept loop, prober thread, and the failover
//! dispatch path.
//!
//! The router speaks the backends' own line-delimited JSON protocol on
//! both sides, so a request line is relayed verbatim: whatever `id` the
//! client chose is echoed by whichever replica finally answers, and a
//! failed-over request is answered exactly once — the first well-formed
//! reply wins and nothing else is sent for that line.

use crate::backend::BackendPool;
use crate::stats::RouterStats;
use crate::RouterConfig;
use phast_serve::conn::{BoundedLineReader, ConnRegistry, LineOutcome};
use phast_serve::protocol::{self, ErrorKind, Reply, ServeError};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Accept-failure backoff start; doubles per consecutive failure.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(5);

/// Accept-failure backoff cap — EMFILE-style pressure clears when
/// connections close, so the loop keeps probing.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// How long [`Router::shutdown`] waits for connection threads to notice
/// their closed sockets.
const SHUTDOWN_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Sleep slice of the prober loop, so shutdown is never blocked behind a
/// full probe interval.
const PROBER_TICK: Duration = Duration::from_millis(10);

/// `retry_after_ms` hint sent when no backend is healthy: long enough
/// for an eject/half-open/recover round trip at default tuning.
const NO_BACKEND_RETRY_MS: u64 = 200;

/// A running failover router: one listening port, N backend replicas.
pub struct Router {
    addr: SocketAddr,
    cfg: Arc<RouterConfig>,
    pool: Arc<BackendPool>,
    stats: Arc<RouterStats>,
    stop: Arc<AtomicBool>,
    registry: Arc<ConnRegistry>,
    accept_handle: Option<thread::JoinHandle<()>>,
    prober_handle: Option<thread::JoinHandle<()>>,
}

impl Router {
    /// Binds `addr`, starts the prober and the accept loop, and returns
    /// once the port is listening. Backends all start healthy; dead ones
    /// are ejected by the prober within a few probe intervals.
    pub fn spawn(cfg: RouterConfig, addr: impl ToSocketAddrs) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let cfg = Arc::new(cfg);
        let pool = Arc::new(BackendPool::new(&cfg.backends));
        let stats = Arc::new(RouterStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let registry = ConnRegistry::new(cfg.max_conns);
        let prober_handle = {
            let (cfg, pool, stats, stop) = (
                Arc::clone(&cfg),
                Arc::clone(&pool),
                Arc::clone(&stats),
                Arc::clone(&stop),
            );
            thread::Builder::new()
                .name("router-prober".into())
                .spawn(move || prober_loop(&cfg, &pool, &stats, &stop))?
        };
        let accept_handle = {
            let (cfg, pool, stats, stop, registry) = (
                Arc::clone(&cfg),
                Arc::clone(&pool),
                Arc::clone(&stats),
                Arc::clone(&stop),
                Arc::clone(&registry),
            );
            thread::Builder::new()
                .name("router-accept".into())
                .spawn(move || accept_loop(&listener, &cfg, &pool, &stats, &stop, &registry))?
        };
        Ok(Router {
            addr,
            cfg,
            pool,
            stats,
            stop,
            registry,
            accept_handle: Some(accept_handle),
            prober_handle: Some(prober_handle),
        })
    }

    /// The bound listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The configuration this router runs with.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The router's counters.
    pub fn stats(&self) -> &Arc<RouterStats> {
        &self.stats
    }

    /// The backend pool (health states, inflight, generations).
    pub fn pool(&self) -> &Arc<BackendPool> {
        &self.pool
    }

    /// Live client connections right now.
    pub fn live_connections(&self) -> usize {
        self.registry.live()
    }

    /// Stops accepting, force-closes live client connections, and joins
    /// the prober. Clients mid-request observe a closed connection.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.registry.close_all();
        self.registry.wait_drained(SHUTDOWN_DRAIN_TIMEOUT);
        if let Some(h) = self.prober_handle.take() {
            let _ = h.join();
        }
    }
}

/// One pooled connection to a backend. `generation` is the backend's
/// generation at open time; an ejection bumps the backend's counter, so
/// a mismatch means "opened before the replica was declared dead" and
/// the connection is drained (closed) instead of reused.
struct BackendConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    generation: u64,
}

fn open_conn(addr: SocketAddr, generation: u64, cfg: &RouterConfig) -> std::io::Result<BackendConn> {
    let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)?;
    stream.set_nodelay(true).ok();
    let io_timeout = (!cfg.io_timeout.is_zero()).then_some(cfg.io_timeout);
    stream.set_read_timeout(io_timeout)?;
    stream.set_write_timeout(io_timeout)?;
    Ok(BackendConn {
        reader: BufReader::new(stream.try_clone()?),
        writer: stream,
        generation,
    })
}

/// Writes one request line and reads one reply line. Any error —
/// including a clean EOF, which mid-exchange means the replica died —
/// leaves the connection unusable (possible stream desync), so the
/// caller must drop it.
fn exchange(conn: &mut BackendConn, line: &str, read_budget: Duration) -> std::io::Result<String> {
    // A shrinking deadline budget caps the read: waiting the full
    // io_timeout on a doomed attempt would eat the failover attempts.
    conn.writer
        .set_read_timeout(Some(read_budget.max(Duration::from_millis(1))))?;
    conn.writer.write_all(line.as_bytes())?;
    conn.writer.write_all(b"\n")?;
    let mut reply = String::new();
    let n = conn.reader.read_line(&mut reply)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "backend closed mid-request",
        ));
    }
    while reply.ends_with('\n') || reply.ends_with('\r') {
        reply.pop();
    }
    Ok(reply)
}

fn prober_loop(cfg: &RouterConfig, pool: &BackendPool, stats: &RouterStats, stop: &AtomicBool) {
    let mut last_round = Instant::now() - cfg.probe_interval;
    while !stop.load(Ordering::SeqCst) {
        if last_round.elapsed() < cfg.probe_interval {
            thread::sleep(PROBER_TICK.min(cfg.probe_interval));
            continue;
        }
        last_round = Instant::now();
        for backend in pool.backends() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let due = match backend.state() {
                crate::HealthState::Healthy => true,
                // Ejected backends are probed only once the half-open
                // door opens; a resting replica is left alone.
                crate::HealthState::Ejected | crate::HealthState::HalfOpen => {
                    backend.tick_halfopen(cfg.halfopen_after)
                }
            };
            if !due {
                continue;
            }
            stats.add_probes(1);
            if probe(backend.addr(), cfg) {
                backend.note_success(stats);
            } else {
                stats.add_probe_failures(1);
                backend.note_failure(cfg.eject_after, stats);
            }
        }
    }
}

/// One health probe: a `stats` request must come back as a well-formed
/// `ok` reply within the io timeout.
fn probe(addr: SocketAddr, cfg: &RouterConfig) -> bool {
    let mut conn = match open_conn(addr, 0, cfg) {
        Ok(c) => c,
        Err(_) => return false,
    };
    match exchange(&mut conn, "{\"op\":\"stats\"}", cfg.io_timeout) {
        Ok(reply) => matches!(protocol::decode_reply(&reply), Ok(Reply::Stats(_))),
        Err(_) => false,
    }
}

fn accept_loop(
    listener: &TcpListener,
    cfg: &Arc<RouterConfig>,
    pool: &Arc<BackendPool>,
    stats: &Arc<RouterStats>,
    stop: &Arc<AtomicBool>,
    registry: &Arc<ConnRegistry>,
) {
    let mut backoff = ACCEPT_BACKOFF_START;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => {
                backoff = ACCEPT_BACKOFF_START;
                s
            }
            Err(_) => {
                thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                continue;
            }
        };
        let Some(guard) = registry.try_register(&stream) else {
            refuse_busy(&stream, cfg);
            continue;
        };
        let (cfg, pool, stats) = (Arc::clone(cfg), Arc::clone(pool), Arc::clone(stats));
        // On spawn failure (thread exhaustion) the closure is dropped,
        // which closes the socket — the client sees a clean refusal.
        let _ = thread::Builder::new()
            .name("router-conn".into())
            .spawn(move || {
                let _guard = guard;
                let _ = client_loop(&stream, &cfg, &pool, &stats);
            });
    }
}

fn refuse_busy(stream: &TcpStream, cfg: &RouterConfig) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let err = ServeError::new(
        ErrorKind::Busy,
        format!(
            "router connection limit {} reached; retry shortly",
            cfg.max_conns
        ),
    );
    let mut line = protocol::encode_error(None, &err);
    line.push('\n');
    let _ = (&mut &*stream).write_all(line.as_bytes());
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn client_loop(
    stream: &TcpStream,
    cfg: &RouterConfig,
    pool: &BackendPool,
    stats: &RouterStats,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let io_timeout = (!cfg.io_timeout.is_zero()).then_some(cfg.io_timeout);
    stream.set_read_timeout(io_timeout)?;
    stream.set_write_timeout(io_timeout)?;
    let mut reader = BoundedLineReader::new(stream.try_clone()?, cfg.max_line_bytes);
    let mut writer = stream.try_clone()?;
    // Pooled backend connections of THIS client connection, by backend
    // index. Per-connection pooling keeps request/reply pairing trivial
    // (one line in flight per backend socket) at the cost of more
    // sockets; replicas already bound their own connection counts.
    let mut conns: HashMap<usize, BackendConn> = HashMap::new();
    loop {
        let line = match reader.read_line() {
            Ok(LineOutcome::Eof) => return Ok(()),
            Ok(LineOutcome::Line(line)) => line,
            Ok(LineOutcome::TooLong) => {
                let err = ServeError::new(
                    ErrorKind::Malformed,
                    format!("request line exceeds {} bytes", cfg.max_line_bytes),
                );
                write_line(&mut writer, &protocol::encode_error(None, &err))?;
                return Ok(());
            }
            // An idle keep-alive connection timing out is a normal
            // close, not an error.
            Err(ref e) if is_timeout(e) => return Ok(()),
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = dispatch(&line, cfg, pool, stats, &mut conns);
        write_line(&mut writer, &reply)?;
    }
}

fn write_line(writer: &mut impl Write, reply: &str) -> std::io::Result<()> {
    writer.write_all(reply.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Routes one request line and returns the one reply line the client
/// gets. Failover policy:
///
/// * A transport failure (connect/write/read error, EOF, garbage reply)
///   counts against the backend's health, drops the pooled connection,
///   and re-dispatches to a different healthy replica.
/// * A *retryable* typed reply (`overloaded`, `queue_full`, `busy`,
///   `transport`) re-dispatches too, but with no health penalty — a
///   shedding replica is alive — and over a kept connection.
/// * Any other reply is relayed verbatim, so the client's `id` (echoed
///   by the replica) survives the failover untouched.
///
/// The budget is the request's own `deadline_ms` when present, else
/// [`RouterConfig::default_budget`]; attempts are further capped at
/// `1 + max_failovers`. An unparseable line gets exactly one attempt —
/// the backend's `malformed` verdict is relayed, never retried.
fn dispatch(
    line: &str,
    cfg: &RouterConfig,
    pool: &BackendPool,
    stats: &RouterStats,
    conns: &mut HashMap<usize, BackendConn>,
) -> String {
    let parsed = protocol::parse_request(line).ok();
    let id = parsed.as_ref().and_then(|r| r.id);
    let budget = parsed
        .as_ref()
        .and_then(|r| r.deadline_ms)
        .map(Duration::from_millis)
        .unwrap_or(cfg.default_budget);
    let give_up_at = Instant::now() + budget;
    let max_attempts = if parsed.is_some() {
        cfg.max_failovers.saturating_add(1)
    } else {
        1
    };
    let mut tried: Vec<usize> = Vec::new();
    let mut last_err: Option<ServeError> = None;
    let mut attempts = 0u32;
    while attempts < max_attempts {
        let now = Instant::now();
        if attempts > 0 && now >= give_up_at {
            break;
        }
        let Some(idx) = pool.pick(&tried) else { break };
        if attempts > 0 {
            stats.add_failovers(1);
        }
        attempts += 1;
        let backend = &pool.backends()[idx];
        let pooled = match conns.remove(&idx) {
            Some(c) if c.generation == backend.generation() => Some(c),
            Some(_stale) => {
                // Opened before this backend's last ejection: drain it
                // (dropping closes the socket) rather than trust it.
                stats.add_drained_conns(1);
                None
            }
            None => None,
        };
        let mut conn = match pooled
            .map(Ok)
            .unwrap_or_else(|| open_conn(backend.addr(), backend.generation(), cfg))
        {
            Ok(c) => c,
            Err(e) => {
                backend.note_failure(cfg.eject_after, stats);
                tried.push(idx);
                last_err = Some(ServeError::new(
                    ErrorKind::Transport,
                    format!("backend {}: connect failed: {e}", backend.addr()),
                ));
                continue;
            }
        };
        let read_budget = give_up_at
            .saturating_duration_since(Instant::now())
            .min(cfg.io_timeout);
        backend.start();
        stats.add_forwarded(1);
        let outcome = exchange(&mut conn, line, read_budget);
        backend.finish();
        let reply = match outcome {
            Ok(reply) => reply,
            Err(e) => {
                backend.note_failure(cfg.eject_after, stats);
                tried.push(idx);
                last_err = Some(ServeError::new(
                    ErrorKind::Transport,
                    format!("backend {} failed mid-request: {e}", backend.addr()),
                ));
                continue;
            }
        };
        match protocol::decode_reply(&reply) {
            Ok(Reply::Error(e)) if e.kind.is_retryable() && max_attempts > 1 => {
                // The replica is alive and talking — keep its connection
                // and its health, just take the work elsewhere.
                backend.note_success(stats);
                conns.insert(idx, conn);
                tried.push(idx);
                last_err = Some(e);
            }
            Ok(_) => {
                backend.note_success(stats);
                conns.insert(idx, conn);
                stats.add_answered(1);
                return reply;
            }
            Err(e) => {
                // Garbage on a trusted stream: possible desync, treat
                // like a transport fault.
                backend.note_failure(cfg.eject_after, stats);
                tried.push(idx);
                last_err = Some(ServeError::new(
                    ErrorKind::Transport,
                    format!("backend {} sent an undecodable reply: {e}", backend.addr()),
                ));
            }
        }
    }
    let err = match last_err {
        Some(err) => {
            stats.add_retries_exhausted(1);
            err
        }
        None => {
            stats.add_no_backend(1);
            ServeError::overloaded(NO_BACKEND_RETRY_MS, "no healthy backend in rotation")
        }
    };
    encode_final_error(id, err)
}

fn encode_final_error(id: Option<i64>, err: ServeError) -> String {
    protocol::encode_error(id, &err)
}
