//! Backend replicas and their health state machine.
//!
//! ```text
//!            >= eject_after consecutive failures
//!   Healthy ───────────────────────────────────────> Ejected
//!      ^                                                │
//!      │ trial probe succeeds          halfopen_after   │
//!      │                                 elapsed        │
//!   HalfOpen <──────────────────────────────────────────┘
//!      │
//!      └── trial probe fails ──> Ejected (rest timer restarts)
//! ```
//!
//! Only the prober moves a backend *forward* out of `Ejected` (clients
//! never gamble a live request on a suspect replica); both the prober
//! and the request path can move one *into* `Ejected` by reporting
//! consecutive transport failures. Retryable typed replies (`overloaded`,
//! `queue_full`) deliberately do **not** count against health: a busy
//! replica is alive — ejecting it under load would amplify the overload
//! on the survivors.

use crate::stats::RouterStats;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where a backend stands in the health state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// In rotation: eligible for client requests.
    Healthy,
    /// Out of rotation; resting until the half-open door opens.
    Ejected,
    /// Out of rotation, but the prober may send one trial probe.
    HalfOpen,
}

struct HealthInner {
    state: HealthState,
    /// Consecutive failures observed (probe or request transport).
    consecutive_failures: u32,
    /// When the backend entered `Ejected` (drives the half-open timer).
    ejected_at: Option<Instant>,
}

/// One backend replica: address, health, and load signals.
pub struct Backend {
    addr: SocketAddr,
    health: Mutex<HealthInner>,
    /// Requests currently outstanding toward this backend — the
    /// least-loaded picking signal.
    inflight: AtomicUsize,
    /// Bumped on every ejection. A pooled connection opened under an
    /// older generation is drained (closed) instead of reused.
    generation: AtomicU64,
}

impl Backend {
    fn new(addr: SocketAddr) -> Backend {
        Backend {
            addr,
            health: Mutex::new(HealthInner {
                state: HealthState::Healthy,
                consecutive_failures: 0,
                ejected_at: None,
            }),
            inflight: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// The replica's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current health state.
    pub fn state(&self) -> HealthState {
        self.lock().state
    }

    /// Requests currently outstanding toward this backend.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// The current connection generation (see [`Backend`] docs).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Marks one more request in flight; pair with [`Self::finish`].
    pub fn start(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Ends one in-flight request.
    pub fn finish(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthInner> {
        // Health state is plain data; a panicking holder cannot leave it
        // torn, so a poisoned lock is still usable.
        self.health
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Reports a successful exchange (probe or request). A half-open or
    /// ejected backend returns to rotation; returns true when that
    /// recovery happened.
    pub fn note_success(&self, stats: &RouterStats) -> bool {
        let mut h = self.lock();
        h.consecutive_failures = 0;
        let recovered = h.state != HealthState::Healthy;
        if recovered {
            h.state = HealthState::Healthy;
            h.ejected_at = None;
            stats.add_recoveries(1);
        }
        recovered
    }

    /// Reports a transport-level failure (probe or request). Ejects the
    /// backend once `eject_after` consecutive failures accumulate (a
    /// half-open backend re-ejects on its first failure); returns true
    /// when this call performed the ejection.
    pub fn note_failure(&self, eject_after: u32, stats: &RouterStats) -> bool {
        let mut h = self.lock();
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        let should_eject = match h.state {
            HealthState::Healthy => h.consecutive_failures >= eject_after.max(1),
            // A failed trial probe sends the backend straight back to
            // rest — half-open exists to catch exactly this.
            HealthState::HalfOpen => true,
            HealthState::Ejected => false,
        };
        if should_eject {
            h.state = HealthState::Ejected;
            h.ejected_at = Some(Instant::now());
            // Invalidate every pooled connection to this backend: they
            // will be drained (closed), not reused, on next touch.
            self.generation.fetch_add(1, Ordering::Relaxed);
            stats.add_ejections(1);
        }
        should_eject
    }

    /// Opens the half-open door if the backend has rested long enough.
    /// Returns true when the caller (the prober) should send a trial
    /// probe — i.e. the backend is now `HalfOpen`.
    pub fn tick_halfopen(&self, halfopen_after: Duration) -> bool {
        let mut h = self.lock();
        match h.state {
            HealthState::HalfOpen => true,
            HealthState::Ejected => {
                let rested = h
                    .ejected_at
                    .map(|t| t.elapsed() >= halfopen_after)
                    .unwrap_or(true);
                if rested {
                    h.state = HealthState::HalfOpen;
                }
                rested
            }
            HealthState::Healthy => false,
        }
    }
}

/// The router's set of backends with least-loaded healthy picking.
pub struct BackendPool {
    backends: Vec<Backend>,
}

impl BackendPool {
    /// Builds the pool; every backend starts `Healthy` (the prober
    /// demotes dead ones within an interval or two).
    pub fn new(addrs: &[SocketAddr]) -> BackendPool {
        BackendPool {
            backends: addrs.iter().map(|&a| Backend::new(a)).collect(),
        }
    }

    /// All backends, in configuration order.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Number of backends currently in rotation.
    pub fn healthy(&self) -> usize {
        self.backends
            .iter()
            .filter(|b| b.state() == HealthState::Healthy)
            .count()
    }

    /// Picks the healthy backend with the fewest requests in flight,
    /// skipping indices in `exclude` (replicas already tried by this
    /// request). Falls back to an excluded-but-healthy backend rather
    /// than refusing outright — retrying the same replica beats failing
    /// when it is the only one left. Returns the backend's index.
    pub fn pick(&self, exclude: &[usize]) -> Option<usize> {
        let best = |allow_excluded: bool| {
            self.backends
                .iter()
                .enumerate()
                .filter(|(i, b)| {
                    b.state() == HealthState::Healthy
                        && (allow_excluded || !exclude.contains(i))
                })
                .min_by_key(|(_, b)| b.inflight())
                .map(|(i, _)| i)
        };
        best(false).or_else(|| best(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn state_machine_walks_eject_halfopen_recover() {
        let stats = RouterStats::default();
        let b = Backend::new(addr(1));
        assert_eq!(b.state(), HealthState::Healthy);
        let g0 = b.generation();
        // Two failures: still healthy (eject_after = 3).
        assert!(!b.note_failure(3, &stats));
        assert!(!b.note_failure(3, &stats));
        assert_eq!(b.state(), HealthState::Healthy);
        // Third consecutive failure ejects and bumps the generation.
        assert!(b.note_failure(3, &stats));
        assert_eq!(b.state(), HealthState::Ejected);
        assert_eq!(b.generation(), g0 + 1);
        assert_eq!(stats.ejections(), 1);
        // The half-open door stays shut until the rest elapses.
        assert!(!b.tick_halfopen(Duration::from_secs(3600)));
        assert_eq!(b.state(), HealthState::Ejected);
        assert!(b.tick_halfopen(Duration::ZERO));
        assert_eq!(b.state(), HealthState::HalfOpen);
        // A failed trial probe re-ejects immediately...
        assert!(b.note_failure(3, &stats));
        assert_eq!(b.state(), HealthState::Ejected);
        // ...and a successful one (after the next door) recovers.
        assert!(b.tick_halfopen(Duration::ZERO));
        assert!(b.note_success(&stats));
        assert_eq!(b.state(), HealthState::Healthy);
        assert_eq!(stats.recoveries(), 1);
        // Success resets the failure streak: one new failure ≠ ejection.
        assert!(!b.note_failure(3, &stats));
        assert_eq!(b.state(), HealthState::Healthy);
    }

    #[test]
    fn pick_prefers_least_inflight_healthy_and_honors_exclusion() {
        let stats = RouterStats::default();
        let pool = BackendPool::new(&[addr(1), addr(2), addr(3)]);
        pool.backends()[0].start();
        pool.backends()[0].start();
        pool.backends()[1].start();
        // Least-loaded healthy wins.
        assert_eq!(pool.pick(&[]), Some(2));
        // Excluding it falls to the next-least-loaded.
        assert_eq!(pool.pick(&[2]), Some(1));
        // Ejected backends are never picked.
        pool.backends()[2].note_failure(1, &stats);
        assert_eq!(pool.pick(&[]), Some(1));
        assert_eq!(pool.healthy(), 2);
        // When every healthy backend is excluded, retrying one beats
        // refusing the request.
        assert_eq!(pool.pick(&[0, 1]), Some(1));
        // With nothing healthy at all, there is genuinely no one to ask.
        pool.backends()[0].note_failure(1, &stats);
        pool.backends()[1].note_failure(1, &stats);
        assert_eq!(pool.pick(&[]), None);
    }
}
