//! Baseline NSSP algorithms: Dijkstra's algorithm (generic over the queue),
//! breadth-first search, and bidirectional Dijkstra.
//!
//! These are the algorithms PHAST is measured against in Tables I, V, VI
//! and VII of the paper. Dijkstra is implemented exactly as Section II-A
//! describes: distance labels `d(v)`, parent pointers `p(v)`, a priority
//! queue of unscanned vertices with finite labels, and scan-by-minimum
//! until the queue empties.

pub mod bfs;
pub mod bidirectional;
pub mod dijkstra;
pub mod lazy;
pub mod multi;
pub mod tree;

pub use bfs::bfs;
pub use bidirectional::BidirectionalDijkstra;
pub use dijkstra::{Dijkstra, DijkstraResult};
pub use lazy::LazyDijkstra;
pub use multi::many_trees;
pub use tree::ShortestPathTree;
