//! Breadth-first search.
//!
//! BFS is the paper's speed-of-light reference for label-setting algorithms:
//! "an implementation of NSSP using smart queues is usually within a factor
//! of two of breadth-first search" (Section II-A), and basic PHAST matches
//! BFS at about 2.0 seconds on Europe. BFS ignores weights; it computes hop
//! counts.

use phast_graph::{Csr, Vertex};

/// Result of a BFS run: hop counts (`u32::MAX` when unreachable) and the
/// number of vertices visited.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// `hops[v]` is the number of arcs on a shortest (fewest-arc) path.
    pub hops: Vec<u32>,
    /// Number of vertices reached (including the source).
    pub visited: usize,
}

/// Runs BFS over the outgoing arcs from `s`.
pub fn bfs(graph: &Csr, s: Vertex) -> BfsResult {
    let n = graph.num_vertices();
    let mut hops = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    hops[s as usize] = 0;
    queue.push_back(s);
    let mut visited = 0;
    while let Some(v) = queue.pop_front() {
        visited += 1;
        let next = hops[v as usize] + 1;
        for arc in graph.out(v) {
            if hops[arc.head as usize] == u32::MAX {
                hops[arc.head as usize] = next;
                queue.push_back(arc.head);
            }
        }
    }
    BfsResult { hops, visited }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::GraphBuilder;

    #[test]
    fn hop_counts_on_a_cycle() {
        let mut b = GraphBuilder::new(4);
        for v in 0..4u32 {
            b.add_arc(v, (v + 1) % 4, 100);
        }
        let g = b.build();
        let r = bfs(g.forward(), 0);
        assert_eq!(r.hops, vec![0, 1, 2, 3]);
        assert_eq!(r.visited, 4);
    }

    #[test]
    fn unreachable_marked_max() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1, 1);
        let g = b.build();
        let r = bfs(g.forward(), 0);
        assert_eq!(r.hops[2], u32::MAX);
        assert_eq!(r.visited, 2);
    }

    #[test]
    fn bfs_ignores_weights() {
        // Heavy direct arc vs light two-hop path: BFS prefers fewer hops.
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 2, 1000).add_arc(0, 1, 1).add_arc(1, 2, 1);
        let g = b.build();
        let r = bfs(g.forward(), 0);
        assert_eq!(r.hops[2], 1);
    }
}
