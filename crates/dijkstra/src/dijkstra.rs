//! Dijkstra's algorithm, generic over the priority queue.

use phast_graph::{Csr, Vertex, Weight, INF};
use phast_pq::{DecreaseKeyQueue, DialQueue, FourHeap, IndexedBinaryHeap, RadixHeap};

/// The output of one NSSP run: distance labels and parent pointers indexed
/// by vertex ID. Unreachable vertices have `dist == INF` and
/// `parent == NO_PARENT`.
#[derive(Clone, Debug)]
pub struct DijkstraResult {
    /// `dist[v]` is the shortest distance from the source to `v`.
    pub dist: Vec<Weight>,
    /// `parent[v]` is `v`'s predecessor on a shortest path, or
    /// [`DijkstraResult::NO_PARENT`].
    pub parent: Vec<Vertex>,
    /// Number of vertices scanned (popped with a final label).
    pub scanned: usize,
}

impl DijkstraResult {
    /// Sentinel parent for the source and unreachable vertices.
    pub const NO_PARENT: Vertex = Vertex::MAX;

    /// Reconstructs the path from the source to `t` (inclusive), or `None`
    /// if `t` is unreachable.
    pub fn path_to(&self, t: Vertex) -> Option<Vec<Vertex>> {
        if self.dist[t as usize] >= INF {
            return None;
        }
        let mut path = vec![t];
        let mut v = t;
        while self.parent[v as usize] != Self::NO_PARENT {
            v = self.parent[v as usize];
            path.push(v);
            assert!(path.len() <= self.dist.len(), "parent cycle");
        }
        path.reverse();
        Some(path)
    }
}

/// A reusable Dijkstra solver over a fixed graph. The queue type parameter
/// selects the Table I variant: [`IndexedBinaryHeap`] ("binary heap"),
/// [`DialQueue`] ("Dial"), [`RadixHeap`] ("smart queue" family) or
/// [`FourHeap`].
///
/// ```
/// use phast_dijkstra::dijkstra::Dijkstra;
/// use phast_graph::{GraphBuilder, INF};
/// use phast_pq::FourHeap;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_arc(0, 1, 4).add_arc(1, 2, 6);
/// let g = b.build();
///
/// let mut solver = Dijkstra::<FourHeap>::new(g.forward());
/// let result = solver.run(0);
/// assert_eq!(result.dist, vec![0, 4, 10]);
/// assert_eq!(result.path_to(2), Some(vec![0, 1, 2]));
/// assert_eq!(solver.run(2).dist, vec![INF, INF, 0]);
/// ```
pub struct Dijkstra<'g, Q: DecreaseKeyQueue = FourHeap> {
    graph: &'g Csr,
    queue: Q,
    dist: Vec<Weight>,
    parent: Vec<Vertex>,
    /// Vertices touched by the last run, for O(touched) reinitialization.
    touched: Vec<Vertex>,
}

/// Dijkstra with the binary heap of Table I.
pub type BinaryHeapDijkstra<'g> = Dijkstra<'g, IndexedBinaryHeap>;
/// Dijkstra with Dial's bucket queue of Table I.
pub type DialDijkstra<'g> = Dijkstra<'g, DialQueue>;
/// Dijkstra with the multi-level-bucket (smart queue family) structure.
pub type RadixDijkstra<'g> = Dijkstra<'g, RadixHeap>;

impl<'g, Q: DecreaseKeyQueue> Dijkstra<'g, Q> {
    /// Creates a solver for `graph` (outgoing-arc CSR).
    pub fn new(graph: &'g Csr) -> Self {
        let n = graph.num_vertices();
        Self {
            graph,
            queue: Q::new(n),
            dist: vec![INF; n],
            parent: vec![DijkstraResult::NO_PARENT; n],
            touched: Vec::new(),
        }
    }

    /// Runs a full NSSP computation from `s`, reusing internal buffers.
    pub fn run(&mut self, s: Vertex) -> DijkstraResult {
        self.run_bounded(s, INF)
    }

    /// Runs Dijkstra from `s` but does not scan vertices with labels larger
    /// than `bound` (used by witness searches and local queries).
    pub fn run_bounded(&mut self, s: Vertex, bound: Weight) -> DijkstraResult {
        self.reset();
        self.dist[s as usize] = 0;
        self.touched.push(s);
        self.queue.insert(s, 0);
        let mut scanned = 0;
        while let Some((v, dv)) = self.queue.pop_min() {
            if dv > bound {
                break;
            }
            scanned += 1;
            for arc in self.graph.out(v) {
                let cand = dv + arc.weight;
                let w = arc.head as usize;
                if cand < self.dist[w] {
                    if self.dist[w] == INF {
                        self.touched.push(arc.head);
                        self.queue.insert(arc.head, cand);
                    } else {
                        self.queue.decrease_key(arc.head, cand);
                    }
                    self.dist[w] = cand;
                    self.parent[w] = v;
                }
            }
        }
        DijkstraResult {
            dist: self.dist.clone(),
            parent: self.parent.clone(),
            scanned,
        }
    }

    /// Like [`Self::run`] but avoids cloning: hands out the internal label
    /// arrays for inspection until the next run.
    pub fn run_in_place(&mut self, s: Vertex) -> (&[Weight], &[Vertex], usize) {
        let r = self.run_stats(s);
        (&self.dist, &self.parent, r)
    }

    fn run_stats(&mut self, s: Vertex) -> usize {
        self.reset();
        self.dist[s as usize] = 0;
        self.touched.push(s);
        self.queue.insert(s, 0);
        let mut scanned = 0;
        while let Some((v, dv)) = self.queue.pop_min() {
            scanned += 1;
            for arc in self.graph.out(v) {
                let cand = dv + arc.weight;
                let w = arc.head as usize;
                if cand < self.dist[w] {
                    if self.dist[w] == INF {
                        self.touched.push(arc.head);
                        self.queue.insert(arc.head, cand);
                    } else {
                        self.queue.decrease_key(arc.head, cand);
                    }
                    self.dist[w] = cand;
                    self.parent[w] = v;
                }
            }
        }
        scanned
    }

    /// Distance labels of the last run.
    pub fn dist(&self) -> &[Weight] {
        &self.dist
    }

    /// Parent pointers of the last run.
    pub fn parent(&self) -> &[Vertex] {
        &self.parent
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF;
            self.parent[v as usize] = DijkstraResult::NO_PARENT;
        }
        self.touched.clear();
        self.queue.clear();
    }
}

/// One-shot convenience: Dijkstra from `s` with the default queue.
pub fn shortest_paths(graph: &Csr, s: Vertex) -> DijkstraResult {
    Dijkstra::<FourHeap>::new(graph).run(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::GraphBuilder;
    use proptest::prelude::*;

    fn line(n: usize) -> phast_graph::Graph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_arc(v as Vertex, (v + 1) as Vertex, 2);
        }
        b.build()
    }

    #[test]
    fn distances_on_a_line() {
        let g = line(5);
        let r = shortest_paths(g.forward(), 0);
        assert_eq!(r.dist, vec![0, 2, 4, 6, 8]);
        assert_eq!(r.scanned, 5);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = line(3); // directed, so nothing reaches 0
        let r = shortest_paths(g.forward(), 2);
        assert_eq!(r.dist, vec![INF, INF, 0]);
        assert_eq!(r.parent[0], DijkstraResult::NO_PARENT);
    }

    #[test]
    fn path_reconstruction() {
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1, 1)
            .add_arc(1, 3, 1)
            .add_arc(0, 2, 1)
            .add_arc(2, 3, 5);
        let g = b.build();
        let r = shortest_paths(g.forward(), 0);
        assert_eq!(r.path_to(3), Some(vec![0, 1, 3]));
        assert_eq!(r.path_to(0), Some(vec![0]));
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let g = line(3);
        let r = shortest_paths(g.forward(), 1);
        assert_eq!(r.path_to(0), None);
    }

    #[test]
    fn zero_weight_arcs_are_fine() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1, 0).add_arc(1, 2, 0);
        let g = b.build();
        let r = shortest_paths(g.forward(), 0);
        assert_eq!(r.dist, vec![0, 0, 0]);
    }

    #[test]
    fn solver_is_reusable() {
        let g = line(4);
        let mut d = Dijkstra::<FourHeap>::new(g.forward());
        let a = d.run(0);
        let b = d.run(2);
        assert_eq!(a.dist[3], 6);
        assert_eq!(b.dist, vec![INF, INF, 0, 2]);
    }

    #[test]
    fn bounded_run_stops_early() {
        let g = line(10);
        let mut d = Dijkstra::<FourHeap>::new(g.forward());
        let r = d.run_bounded(0, 5);
        // Vertices beyond distance 5 are never scanned...
        assert!(r.scanned <= 4);
        // ...but the last scan may have labeled its neighbour.
        assert_eq!(r.dist[2], 4);
    }

    /// Brute-force Bellman-Ford as the independent oracle.
    fn bellman_ford(g: &Csr, s: Vertex) -> Vec<Weight> {
        let n = g.num_vertices();
        let mut dist = vec![INF; n];
        dist[s as usize] = 0;
        for _ in 0..n {
            let mut changed = false;
            for (u, v, w) in g.iter_arcs() {
                if dist[u as usize] < INF && dist[u as usize] + w < dist[v as usize] {
                    dist[v as usize] = dist[u as usize] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    fn all_queues_agree(g: &phast_graph::Graph, s: Vertex, want: &[Weight]) {
        let f = g.forward();
        assert_eq!(BinaryHeapDijkstra::new(f).run(s).dist, want, "binary");
        assert_eq!(Dijkstra::<FourHeap>::new(f).run(s).dist, want, "4-heap");
        assert_eq!(RadixDijkstra::new(f).run(s).dist, want, "radix");
        let mut dial = Dijkstra::<DialQueue>::new(f);
        assert_eq!(dial.run(s).dist, want, "dial");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn matches_bellman_ford_on_random_graphs(
            n in 1usize..40,
            m in 0usize..160,
            seed in 0u64..500,
            max_w in 1u32..50,
        ) {
            let g = phast_graph::gen::random::gnm(n, m, max_w, seed);
            let s = (seed % n as u64) as Vertex;
            let want = bellman_ford(g.forward(), s);
            all_queues_agree(&g, s, &want);
        }

        #[test]
        fn parents_form_shortest_path_tree(seed in 0u64..100) {
            let g = strongly_connected_gnm(30, 60, 20, seed);
            let r = shortest_paths(g.forward(), 0);
            for v in 1..30u32 {
                let p = r.parent[v as usize];
                prop_assert_ne!(p, DijkstraResult::NO_PARENT);
                // The tree arc (p, v) must be tight: d(v) = d(p) + w(p, v).
                let w = g.out(p).iter()
                    .filter(|a| a.head == v)
                    .map(|a| a.weight)
                    .min()
                    .expect("parent arc exists");
                prop_assert_eq!(r.dist[v as usize], r.dist[p as usize] + w);
            }
        }
    }
}
