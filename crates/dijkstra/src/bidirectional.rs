//! Bidirectional Dijkstra for point-to-point queries.
//!
//! The reference algorithm CH queries are validated against, and the
//! baseline arc-flag speedups are quoted relative to ("speedups of more
//! than three orders of magnitude over a bidirectional version of
//! Dijkstra's algorithm", Section VII-B).

use phast_graph::{Csr, Vertex, Weight, INF};
use phast_pq::{DecreaseKeyQueue, FourHeap};

/// A reusable bidirectional point-to-point solver.
pub struct BidirectionalDijkstra<'g> {
    forward: &'g Csr,
    /// The reversed graph as a forward CSR (so both searches scan outgoing
    /// arcs).
    backward: Csr,
    df: Vec<Weight>,
    db: Vec<Weight>,
    touched_f: Vec<Vertex>,
    touched_b: Vec<Vertex>,
}

impl<'g> BidirectionalDijkstra<'g> {
    /// Creates a solver for the graph with outgoing CSR `forward`.
    pub fn new(forward: &'g Csr) -> Self {
        let n = forward.num_vertices();
        Self {
            forward,
            backward: forward.transposed(),
            df: vec![INF; n],
            db: vec![INF; n],
            touched_f: Vec::new(),
            touched_b: Vec::new(),
        }
    }

    /// Shortest distance from `s` to `t`, or `None` if unreachable.
    ///
    /// Alternates the two searches and stops when the sum of the two queue
    /// minima reaches the best meeting value `µ`.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Weight> {
        for &v in &self.touched_f {
            self.df[v as usize] = INF;
        }
        for &v in &self.touched_b {
            self.db[v as usize] = INF;
        }
        self.touched_f.clear();
        self.touched_b.clear();

        let mut qf = FourHeap::new(self.forward.num_vertices());
        let mut qb = FourHeap::new(self.forward.num_vertices());
        self.df[s as usize] = 0;
        self.db[t as usize] = 0;
        self.touched_f.push(s);
        self.touched_b.push(t);
        qf.insert(s, 0);
        qb.insert(t, 0);
        let mut mu = if s == t { 0 } else { INF };

        loop {
            let fmin = qf.peek_min().map(|(_, k)| k);
            let bmin = qb.peek_min().map(|(_, k)| k);
            let lower = match (fmin, bmin) {
                (Some(a), Some(b)) => a.saturating_add(b),
                _ => break, // one side exhausted: no more meetings possible
            };
            if lower >= mu {
                break;
            }
            // Expand the side with the smaller minimum (balanced growth).
            if fmin <= bmin {
                let (v, dv) = qf.pop_min().expect("checked non-empty");
                for arc in self.forward.out(v) {
                    let cand = dv + arc.weight;
                    let w = arc.head as usize;
                    if cand < self.df[w] {
                        if self.df[w] == INF {
                            self.touched_f.push(arc.head);
                            qf.insert(arc.head, cand);
                        } else {
                            qf.decrease_key(arc.head, cand);
                        }
                        self.df[w] = cand;
                    }
                    if self.db[w] < INF {
                        mu = mu.min(cand + self.db[w]);
                    }
                }
            } else {
                let (v, dv) = qb.pop_min().expect("checked non-empty");
                for arc in self.backward.out(v) {
                    let cand = dv + arc.weight;
                    let w = arc.head as usize;
                    if cand < self.db[w] {
                        if self.db[w] == INF {
                            self.touched_b.push(arc.head);
                            qb.insert(arc.head, cand);
                        } else {
                            qb.decrease_key(arc.head, cand);
                        }
                        self.db[w] = cand;
                    }
                    if self.df[w] < INF {
                        mu = mu.min(cand + self.df[w]);
                    }
                }
            }
        }
        (mu < INF).then_some(mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_paths;
    use phast_graph::gen::random::{gnm, strongly_connected_gnm};
    use phast_graph::GraphBuilder;
    use proptest::prelude::*;

    #[test]
    fn simple_query() {
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1, 1)
            .add_arc(1, 2, 1)
            .add_arc(2, 3, 1)
            .add_arc(0, 3, 10);
        let g = b.build();
        let mut bd = BidirectionalDijkstra::new(g.forward());
        assert_eq!(bd.query(0, 3), Some(3));
        assert_eq!(bd.query(0, 0), Some(0));
        assert_eq!(bd.query(3, 0), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn matches_unidirectional(seed in 0u64..300, n in 2usize..40, m in 0usize..150) {
            let g = gnm(n, m, 30, seed);
            let s = (seed % n as u64) as Vertex;
            let t = ((seed / 7) % n as u64) as Vertex;
            let want = shortest_paths(g.forward(), s).dist[t as usize];
            let got = BidirectionalDijkstra::new(g.forward()).query(s, t);
            prop_assert_eq!(got, (want < INF).then_some(want));
        }

        #[test]
        fn reusable_across_queries(seed in 0u64..50) {
            let g = strongly_connected_gnm(25, 50, 20, seed);
            let mut bd = BidirectionalDijkstra::new(g.forward());
            for s in 0..5u32 {
                let full = shortest_paths(g.forward(), s);
                for t in [0u32, 7, 13, 24] {
                    prop_assert_eq!(bd.query(s, t), Some(full.dist[t as usize]));
                }
            }
        }
    }
}
