//! Lazy-deletion Dijkstra.
//!
//! The variant most production codebases ship: a plain binary heap with
//! *stale entries* instead of decrease-key — re-push on improvement, skip
//! entries whose key no longer matches the label. Does more pops
//! (up to one per relaxation) but each is cheaper and the structure is
//! simpler; on sparse road networks the two variants are close, which is
//! worth demonstrating next to the paper's decrease-key queues.

use phast_graph::{Csr, Vertex, Weight, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A reusable lazy-deletion Dijkstra solver.
pub struct LazyDijkstra<'g> {
    graph: &'g Csr,
    dist: Vec<Weight>,
    touched: Vec<Vertex>,
    heap: BinaryHeap<Reverse<(Weight, Vertex)>>,
}

impl<'g> LazyDijkstra<'g> {
    /// Creates a solver for `graph`.
    pub fn new(graph: &'g Csr) -> Self {
        Self {
            graph,
            dist: vec![INF; graph.num_vertices()],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Full NSSP from `s`; returns `(labels, scanned, popped)` — `popped`
    /// counts heap extractions including stale ones (the overhead this
    /// variant trades for simplicity).
    pub fn run(&mut self, s: Vertex) -> (&[Weight], usize, usize) {
        for &v in &self.touched {
            self.dist[v as usize] = INF;
        }
        self.touched.clear();
        self.heap.clear();

        self.dist[s as usize] = 0;
        self.touched.push(s);
        self.heap.push(Reverse((0, s)));
        let mut scanned = 0usize;
        let mut popped = 0usize;
        while let Some(Reverse((d, v))) = self.heap.pop() {
            popped += 1;
            if d > self.dist[v as usize] {
                continue; // stale entry
            }
            scanned += 1;
            for a in self.graph.out(v) {
                let cand = d + a.weight;
                if cand < self.dist[a.head as usize] {
                    if self.dist[a.head as usize] == INF {
                        self.touched.push(a.head);
                    }
                    self.dist[a.head as usize] = cand;
                    self.heap.push(Reverse((cand, a.head)));
                }
            }
        }
        (&self.dist, scanned, popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_paths;
    use phast_graph::gen::random::{gnm, strongly_connected_gnm};
    use proptest::prelude::*;

    #[test]
    fn matches_decrease_key_dijkstra() {
        let g = strongly_connected_gnm(50, 150, 30, 4);
        let mut lazy = LazyDijkstra::new(g.forward());
        for s in 0..10u32 {
            let (dist, scanned, popped) = lazy.run(s);
            let want = shortest_paths(g.forward(), s);
            assert_eq!(dist, &want.dist[..], "source {s}");
            assert_eq!(scanned, want.scanned);
            assert!(popped >= scanned, "stale pops can only add");
        }
    }

    #[test]
    fn reusable_and_resets_labels() {
        let g = strongly_connected_gnm(20, 40, 10, 5);
        let mut lazy = LazyDijkstra::new(g.forward());
        let a = lazy.run(0).0.to_vec();
        let _ = lazy.run(7);
        let c = lazy.run(0).0.to_vec();
        assert_eq!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn fuzz_against_reference(n in 1usize..40, m in 0usize..160, seed in 0u64..500) {
            let g = gnm(n, m, 50, seed);
            let s = (seed % n as u64) as Vertex;
            let mut lazy = LazyDijkstra::new(g.forward());
            let (dist, _, _) = lazy.run(s);
            prop_assert_eq!(dist, &shortest_paths(g.forward(), s).dist[..]);
        }
    }
}
