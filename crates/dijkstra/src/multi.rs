//! Multi-source batch driver: one tree per core.
//!
//! The paper's multi-core Dijkstra baseline (Tables V and VI) assigns
//! different sources to different cores — "the obvious approach for
//! parallelization" of Section V. Each worker owns a private solver, so
//! there is no sharing at all.

use crate::dijkstra::Dijkstra;
use phast_graph::{Csr, Vertex, Weight};
use phast_pq::DecreaseKeyQueue;
use rayon::prelude::*;

/// Computes one shortest path tree per source in parallel (one solver per
/// rayon worker) and reduces each to a summary value with `f`.
///
/// Returning a per-tree summary rather than the full `n`-sized label arrays
/// keeps the memory footprint `O(cores * n)` instead of `O(sources * n)`,
/// which is what makes all-pairs-scale experiments feasible.
pub fn many_trees<Q, T, F>(graph: &Csr, sources: &[Vertex], f: F) -> Vec<T>
where
    Q: DecreaseKeyQueue,
    T: Send,
    F: Fn(Vertex, &[Weight], &[Vertex]) -> T + Sync,
{
    sources
        .par_iter()
        .map_init(
            || Dijkstra::<Q>::new(graph),
            |solver, &s| {
                let (dist, parent, _) = solver.run_in_place(s);
                f(s, dist, parent)
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::INF;
    use phast_pq::FourHeap;

    #[test]
    fn parallel_trees_match_sequential() {
        let g = strongly_connected_gnm(60, 180, 25, 3);
        let sources: Vec<Vertex> = (0..60).collect();
        let eccs = many_trees::<FourHeap, _, _>(g.forward(), &sources, |_, dist, _| {
            dist.iter().copied().filter(|&d| d < INF).max().unwrap()
        });
        for (i, &s) in sources.iter().enumerate() {
            let want = shortest_paths(g.forward(), s)
                .dist
                .into_iter()
                .filter(|&d| d < INF)
                .max()
                .unwrap();
            assert_eq!(eccs[i], want);
        }
    }

    #[test]
    fn empty_source_list() {
        let g = strongly_connected_gnm(5, 10, 5, 0);
        let out = many_trees::<FourHeap, _, _>(g.forward(), &[], |_, _, _| 0u32);
        assert!(out.is_empty());
    }
}
