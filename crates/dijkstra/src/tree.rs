//! Shortest path trees as a first-class object.
//!
//! Applications (Section VII) traverse trees bottom-up (reach) or top-down
//! (betweenness dependency accumulation); this type wraps distance labels
//! and parent pointers with the traversals they need.

use phast_graph::{Csr, Vertex, Weight, INF};

/// A rooted shortest path tree over a graph, given by parent pointers and
/// distance labels.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    /// The root (source) vertex.
    pub root: Vertex,
    /// `dist[v]`: distance from the root, `INF` if unreachable.
    pub dist: Vec<Weight>,
    /// `parent[v]`: predecessor of `v`, [`Self::NO_PARENT`] for the root and
    /// unreachable vertices.
    pub parent: Vec<Vertex>,
}

impl ShortestPathTree {
    /// Sentinel for "no parent".
    pub const NO_PARENT: Vertex = Vertex::MAX;

    /// Builds a tree from raw label arrays.
    pub fn new(root: Vertex, dist: Vec<Weight>, parent: Vec<Vertex>) -> Self {
        assert_eq!(dist.len(), parent.len());
        Self { root, dist, parent }
    }

    /// Number of vertices (graph size, not tree size).
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// True for the degenerate zero-vertex tree.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Number of vertices actually reached.
    pub fn num_reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d < INF).count()
    }

    /// The farthest finite distance (the source's *eccentricity*); `None`
    /// if the tree reaches nothing but the root.
    pub fn eccentricity(&self) -> Option<Weight> {
        self.dist.iter().copied().filter(|&d| d < INF).max()
    }

    /// Verifies this is a valid shortest path tree of `g`:
    /// every tree arc exists and is tight, and every graph arc satisfies the
    /// triangle inequality `d(v) <= d(u) + w(u, v)`.
    pub fn validate(&self, g: &Csr) -> Result<(), String> {
        let n = g.num_vertices();
        if self.dist.len() != n {
            return Err(format!("size mismatch: tree {} graph {n}", self.dist.len()));
        }
        if self.dist[self.root as usize] != 0 {
            return Err("root distance must be 0".into());
        }
        for (u, v, w) in g.iter_arcs() {
            let (du, dv) = (self.dist[u as usize], self.dist[v as usize]);
            if du < INF && du + w < dv {
                return Err(format!("arc ({u},{v}) violates triangle inequality"));
            }
        }
        for v in 0..n as Vertex {
            let p = self.parent[v as usize];
            if p == Self::NO_PARENT {
                if v != self.root && self.dist[v as usize] < INF {
                    return Err(format!("reached vertex {v} lacks a parent"));
                }
                continue;
            }
            let tight = g
                .out(p)
                .iter()
                .any(|a| a.head == v && self.dist[p as usize] + a.weight == self.dist[v as usize]);
            if !tight {
                return Err(format!("tree arc ({p},{v}) is absent or not tight"));
            }
        }
        Ok(())
    }

    /// Returns the children lists of the tree (index = vertex).
    pub fn children(&self) -> Vec<Vec<Vertex>> {
        let mut kids = vec![Vec::new(); self.len()];
        for v in 0..self.len() as Vertex {
            let p = self.parent[v as usize];
            if p != Self::NO_PARENT {
                kids[p as usize].push(v);
            }
        }
        kids
    }

    /// Vertices in non-decreasing distance order (reached only) — the order
    /// Brandes-style dependency accumulation wants, reversed.
    pub fn by_distance(&self) -> Vec<Vertex> {
        let mut vs: Vec<Vertex> = (0..self.len() as Vertex)
            .filter(|&v| self.dist[v as usize] < INF)
            .collect();
        vs.sort_by_key(|&v| self.dist[v as usize]);
        vs
    }

    /// For every vertex `v`, the *height*: the maximum distance from `v` to
    /// a descendant in the tree (0 for leaves). Computed bottom-up in one
    /// pass over vertices in decreasing distance order. Used by exact reach.
    pub fn heights(&self) -> Vec<Weight> {
        let mut height = vec![0 as Weight; self.len()];
        for &v in self.by_distance().iter().rev() {
            let p = self.parent[v as usize];
            if p != Self::NO_PARENT {
                let up = height[v as usize] + (self.dist[v as usize] - self.dist[p as usize]);
                if up > height[p as usize] {
                    height[p as usize] = up;
                }
            }
        }
        height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_paths;
    use phast_graph::GraphBuilder;

    fn tree_of(g: &phast_graph::Graph, s: Vertex) -> ShortestPathTree {
        let r = shortest_paths(g.forward(), s);
        ShortestPathTree::new(s, r.dist, r.parent)
    }

    fn sample() -> phast_graph::Graph {
        let mut b = GraphBuilder::new(6);
        b.add_arc(0, 1, 2)
            .add_arc(0, 2, 4)
            .add_arc(1, 2, 1)
            .add_arc(1, 3, 7)
            .add_arc(2, 4, 3)
            .add_arc(4, 3, 2)
            .add_arc(3, 5, 1);
        b.build()
    }

    #[test]
    fn validates_its_own_tree() {
        let g = sample();
        let t = tree_of(&g, 0);
        t.validate(g.forward()).unwrap();
        assert_eq!(t.num_reached(), 6);
        assert_eq!(t.eccentricity(), Some(9)); // 0->1->2->4->3->5
    }

    #[test]
    fn rejects_corrupted_tree() {
        let g = sample();
        let mut t = tree_of(&g, 0);
        t.dist[5] += 1;
        assert!(t.validate(g.forward()).is_err());
    }

    #[test]
    fn rejects_fake_parent() {
        let g = sample();
        let mut t = tree_of(&g, 0);
        t.parent[5] = 0; // no arc 0 -> 5
        assert!(t.validate(g.forward()).is_err());
    }

    #[test]
    fn heights_are_subtree_depths() {
        let g = sample();
        let t = tree_of(&g, 0);
        let h = t.heights();
        // Leaf 5 has height 0; the root sees the whole eccentricity.
        assert_eq!(h[5], 0);
        assert_eq!(h[0], 9);
        // Vertex 4 is at distance 6 and its deepest descendant (5) at 9.
        assert_eq!(h[4], 3);
    }

    #[test]
    fn children_inverts_parents() {
        let g = sample();
        let t = tree_of(&g, 0);
        let kids = t.children();
        for (p, list) in kids.iter().enumerate() {
            for &c in list {
                assert_eq!(t.parent[c as usize], p as Vertex);
            }
        }
        let total: usize = kids.iter().map(Vec::len).sum();
        assert_eq!(total, t.num_reached() - 1);
    }

    #[test]
    fn by_distance_is_sorted() {
        let g = sample();
        let t = tree_of(&g, 0);
        let order = t.by_distance();
        assert!(order.windows(2).all(|w| t.dist[w[0] as usize] <= t.dist[w[1] as usize]));
        assert_eq!(order[0], 0);
    }
}
