//! The five machines of Table IV, as published.

use serde::{Deserialize, Serialize};

/// A machine specification row of Table IV.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Short name used in the paper (M2-1, M2-4, M4-12, M1-4, M2-6).
    pub name: &'static str,
    /// CPU marketing description.
    pub cpu: &'static str,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Number of CPU sockets (column "P").
    pub sockets: u32,
    /// Total physical cores (column "c").
    pub cores: u32,
    /// NUMA nodes / local memory banks (column "B").
    pub numa_nodes: u32,
    /// Theoretical per-node local memory bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Approximate DRAM access latency in nanoseconds (era-typical for the
    /// memory type listed in Table IV; not printed in the paper).
    pub dram_latency_ns: f64,
    /// Whether the paper used SSE 4.2 on this machine (only M1-4 and M2-6
    /// support the packed minimum).
    pub has_sse42: bool,
    /// Whole-system power under load in watts (Section VIII-F; only
    /// measured for three systems — zero where unpublished).
    pub system_watts: f64,
}

impl MachineProfile {
    /// M2-1: the ~5-year-old 2-socket, 1-core-per-socket Opteron.
    pub fn m2_1() -> Self {
        Self {
            name: "M2-1",
            cpu: "AMD Opteron 250",
            clock_ghz: 2.4,
            sockets: 2,
            cores: 2,
            numa_nodes: 2,
            bandwidth_gbps: 5.2,
            dram_latency_ns: 110.0,
            has_sse42: false,
            system_watts: 0.0,
        }
    }

    /// M2-4: the ~3-year-old 2-socket dual-core Opteron.
    pub fn m2_4() -> Self {
        Self {
            name: "M2-4",
            cpu: "AMD Opteron 2218",
            clock_ghz: 2.6,
            sockets: 2,
            cores: 4,
            numa_nodes: 2,
            bandwidth_gbps: 8.5,
            dram_latency_ns: 105.0,
            has_sse42: false,
            system_watts: 0.0,
        }
    }

    /// M4-12: the 4-socket, 48-core Magny-Cours server with 8 NUMA nodes.
    pub fn m4_12() -> Self {
        Self {
            name: "M4-12",
            cpu: "AMD Opteron 6168",
            clock_ghz: 1.9,
            sockets: 4,
            cores: 48,
            numa_nodes: 8,
            bandwidth_gbps: 10.6,
            dram_latency_ns: 100.0,
            has_sse42: false,
            system_watts: 747.0,
        }
    }

    /// M1-4: the paper's default commodity workstation (Core i7-920).
    pub fn m1_4() -> Self {
        Self {
            name: "M1-4",
            cpu: "Intel Core-i7 920",
            clock_ghz: 2.67,
            sockets: 1,
            cores: 4,
            numa_nodes: 1,
            bandwidth_gbps: 25.6,
            dram_latency_ns: 65.0,
            has_sse42: true,
            system_watts: 163.0,
        }
    }

    /// M2-6: the 2-socket, 12-core Westmere server.
    pub fn m2_6() -> Self {
        Self {
            name: "M2-6",
            cpu: "Intel Xeon X5680",
            clock_ghz: 3.33,
            sockets: 2,
            cores: 12,
            numa_nodes: 2,
            bandwidth_gbps: 32.0,
            dram_latency_ns: 60.0,
            has_sse42: true,
            system_watts: 332.0,
        }
    }

    /// All five machines in the paper's Table IV order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::m2_1(),
            Self::m2_4(),
            Self::m4_12(),
            Self::m1_4(),
            Self::m2_6(),
        ]
    }

    /// Aggregate local bandwidth with all nodes streaming (pinned).
    pub fn total_bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps * self.numa_nodes as f64
    }

    /// Cores per NUMA node.
    pub fn cores_per_node(&self) -> u32 {
        self.cores / self.numa_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_machines_with_published_shapes() {
        let all = MachineProfile::all();
        assert_eq!(all.len(), 5);
        let m4 = &all[2];
        assert_eq!(m4.name, "M4-12");
        assert_eq!(m4.numa_nodes, 8);
        assert_eq!(m4.cores, 48);
        assert_eq!(m4.cores_per_node(), 6);
        // Only the Intel machines support SSE 4.2 (paper, Section VIII-E).
        let sse: Vec<bool> = all.iter().map(|m| m.has_sse42).collect();
        assert_eq!(sse, vec![false, false, false, true, true]);
    }

    #[test]
    fn profiles_serialize() {
        // The profile's strings are `&'static str`, so round-tripping needs
        // an owner; spot-check the serialized form instead.
        let m = MachineProfile::m2_6();
        let json = serde_json::to_value(&m).unwrap();
        assert_eq!(json["name"], "M2-6");
        assert_eq!(json["cores"], 12);
        assert_eq!(json["bandwidth_gbps"], 32.0);
    }

    #[test]
    fn m1_4_matches_table_iv() {
        let m = MachineProfile::m1_4();
        assert_eq!(m.clock_ghz, 2.67);
        assert_eq!(m.cores, 4);
        assert_eq!(m.numa_nodes, 1);
        assert_eq!(m.bandwidth_gbps, 25.6);
    }
}
