//! The analytic time model.
//!
//! Two machine-independent algorithm constants are calibrated on the
//! paper's fully-documented machine (M1-4, Table I/II):
//!
//! * `A_PHAST`: sweep inefficiency relative to streaming the sweep's bytes
//!   at the machine's single-thread effective bandwidth (§VIII-B measures
//!   ≈2.6 over a *measured* scan; our constant also absorbs the gap between
//!   theoretical and achievable bandwidth, and is fixed so that the model
//!   reproduces M1-4's 172 ms exactly);
//! * `A_DIJKSTRA`: dependent-miss cost per graph element, fixed so the
//!   model reproduces M1-4's 2 810 ms (Dial + DFS layout) exactly.
//!
//! Parallel scaling follows the bandwidth roofline: `t` pinned threads
//! spread across NUMA nodes stream at
//! `Σ_node min(threads_on_node · κ_T, κ_N) · bw_node`; *free* threads are
//! limited to one node's saturated bandwidth (the paper's unpinned M4-12
//! observation) and Dijkstra additionally pays a remote-latency surcharge.
//! Multi-tree batching (`k = 16`) uses the paper's measured multipliers
//! (Table II): ×4.64 with SSE 4.2, ×1.78 without — these are workload
//! properties, not machine properties.

use crate::profiles::MachineProfile;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Fraction of a node's theoretical bandwidth one thread can stream.
const KAPPA_THREAD: f64 = 0.287;
/// Fraction of a node's theoretical bandwidth all its threads together
/// can reach.
const KAPPA_NODE: f64 = 0.80;
/// Sweep bytes over effective single-thread bandwidth, times this, equals
/// sweep time (calibrated on M1-4: 172 ms).
const A_PHAST: f64 = 2.6;
/// Dijkstra cost per graph element (vertices + arcs) in units of DRAM
/// latency (calibrated on M1-4: 2 810 ms at 65 ns over 60 M elements).
const A_DIJKSTRA: f64 = 0.7205;
/// Table II: per-tree speedup of k=16 batching with SSE 4.2 (172/37.1).
const K16_GAIN_SSE: f64 = 4.636;
/// Table II: per-tree speedup of k=16 batching without SSE (172/96.8).
const K16_GAIN_SCALAR: f64 = 1.777;
/// Latency surcharge for unpinned threads on a multi-node machine.
const FREE_LATENCY_PENALTY: f64 = 1.35;

/// Thread placement policy (Table V's "free" vs "pinned" columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Threads migrate; memory lands on arbitrary nodes.
    Free,
    /// One thread per core, memory allocated on the local node, the graph
    /// replicated per node (the paper's tuned configuration).
    Pinned,
}

/// Instance size parameters (the paper's Europe: 18 M / 42 M original
/// arcs, 33.8 M arcs in each search graph).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadSize {
    /// Vertices.
    pub n: u64,
    /// Original arcs.
    pub m: u64,
    /// Downward-graph arcs (`m_down ≈ m/2 + shortcuts`).
    pub m_down: u64,
}

impl WorkloadSize {
    /// The paper's Europe instance.
    pub fn europe() -> Self {
        Self {
            n: 18_010_173,
            m: 42_188_664,
            m_down: 33_800_000,
        }
    }

    /// Bytes one PHAST sweep touches: `first[]`, the arc list, and the
    /// label array (read + write).
    pub fn sweep_bytes(&self) -> f64 {
        (self.n + 1) as f64 * 4.0 + self.m_down as f64 * 8.0 + self.n as f64 * 8.0
    }

    /// Graph elements a Dijkstra run processes.
    pub fn dijkstra_elements(&self) -> f64 {
        (self.n + self.m) as f64
    }
}

/// A model output: per-tree time.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted time per shortest path tree.
    pub per_tree: Duration,
    /// Effective streaming bandwidth assumed, GB/s (PHAST only; 0 for
    /// Dijkstra predictions).
    pub effective_bandwidth_gbps: f64,
}

/// Effective aggregate streaming bandwidth for `threads` threads.
fn effective_bandwidth(m: &MachineProfile, threads: u32, placement: Placement) -> f64 {
    let threads = threads.clamp(1, m.cores);
    match placement {
        Placement::Pinned => {
            // Threads are distributed round-robin over the nodes.
            let mut bw = 0.0;
            for node in 0..m.numa_nodes {
                let t_here =
                    threads / m.numa_nodes + u32::from(node < threads % m.numa_nodes);
                bw += (t_here as f64 * KAPPA_THREAD).min(KAPPA_NODE) * m.bandwidth_gbps;
            }
            bw
        }
        Placement::Free => {
            // Unpinned memory concentrates on the allocating node; remote
            // cores add little. One node's saturated bandwidth is the cap.
            (threads as f64 * KAPPA_THREAD * m.bandwidth_gbps)
                .min(KAPPA_NODE * m.bandwidth_gbps)
        }
    }
}

/// Predicted PHAST time per tree with `threads` parallel trees (one tree
/// per core) and `k` sources per sweep (1 or 16).
pub fn predict_phast(
    m: &MachineProfile,
    w: &WorkloadSize,
    threads: u32,
    k: usize,
    placement: Placement,
) -> Prediction {
    assert!(k == 1 || k == 16, "model is calibrated for k = 1 and k = 16");
    let bw = effective_bandwidth(m, threads, placement);
    // Every tree needs its sweep bytes moved exactly once, so the per-tree
    // time is the bytes over whatever aggregate bandwidth the placement
    // reaches — regardless of how many trees are in flight.
    let per_tree_1 = A_PHAST * w.sweep_bytes() / (bw * 1e9);
    let gain = if k == 16 {
        if m.has_sse42 {
            K16_GAIN_SSE
        } else {
            K16_GAIN_SCALAR
        }
    } else {
        1.0
    };
    Prediction {
        per_tree: Duration::from_secs_f64(per_tree_1 / gain),
        effective_bandwidth_gbps: bw,
    }
}

/// Predicted Dijkstra time per tree with `threads` parallel trees.
pub fn predict_dijkstra(
    m: &MachineProfile,
    w: &WorkloadSize,
    threads: u32,
    placement: Placement,
) -> Prediction {
    let threads = threads.clamp(1, m.cores);
    // Latency-bound: each worker progresses one dependent miss at a time;
    // workers scale linearly until their combined random-access traffic
    // saturates bandwidth (rarely, so modeled as linear in cores), but
    // unpinned placement pays remote latency on multi-node machines.
    let lat_penalty = match placement {
        Placement::Pinned => 1.0,
        Placement::Free if m.numa_nodes > 1 => FREE_LATENCY_PENALTY,
        Placement::Free => 1.0,
    };
    let single =
        A_DIJKSTRA * w.dijkstra_elements() * m.dram_latency_ns * 1e-9 * lat_penalty;
    Prediction {
        per_tree: Duration::from_secs_f64(single / threads as f64),
        effective_bandwidth_gbps: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(d: Duration) -> f64 {
        d.as_secs_f64() * 1e3
    }

    #[test]
    fn calibration_reproduces_m1_4_anchors() {
        let m = MachineProfile::m1_4();
        let w = WorkloadSize::europe();
        // Table I: PHAST reordered, single thread = 172 ms.
        let p = predict_phast(&m, &w, 1, 1, Placement::Pinned);
        assert!(
            (ms(p.per_tree) - 172.0).abs() / 172.0 < 0.05,
            "PHAST single-thread calibration: {:.1} ms",
            ms(p.per_tree)
        );
        // Table I: Dijkstra (Dial, DFS) = 2 810 ms.
        let d = predict_dijkstra(&m, &w, 1, Placement::Pinned);
        assert!(
            (ms(d.per_tree) - 2810.0).abs() / 2810.0 < 0.05,
            "Dijkstra single-thread calibration: {:.0} ms",
            ms(d.per_tree)
        );
        // Table II: k=16 with SSE, one core = 37.1 ms.
        let p16 = predict_phast(&m, &w, 1, 16, Placement::Pinned);
        assert!(
            (ms(p16.per_tree) - 37.1).abs() / 37.1 < 0.06,
            "k=16 SSE: {:.1} ms",
            ms(p16.per_tree)
        );
    }

    #[test]
    fn m1_4_four_cores_is_bandwidth_limited_like_the_paper() {
        // Paper: 47.1 ms/tree on 4 cores (3.7x, not 4x — bandwidth).
        let m = MachineProfile::m1_4();
        let w = WorkloadSize::europe();
        let p4 = predict_phast(&m, &w, 4, 1, Placement::Pinned);
        let speedup = 172.0 / ms(p4.per_tree);
        assert!(
            (2.0..4.0).contains(&speedup),
            "4-core speedup {speedup:.2} should be sublinear"
        );
    }

    #[test]
    fn single_thread_ratio_is_phast_favoured_on_every_machine() {
        // Paper: "PHAST outperforms Dijkstra's algorithm by a factor of
        // approximately 19, regardless of the machine."
        let w = WorkloadSize::europe();
        for m in MachineProfile::all() {
            let p = predict_phast(&m, &w, 1, 1, Placement::Pinned);
            let d = predict_dijkstra(&m, &w, 1, Placement::Pinned);
            let ratio = d.per_tree.as_secs_f64() / p.per_tree.as_secs_f64();
            assert!(
                (4.0..40.0).contains(&ratio),
                "{}: ratio {ratio:.1} out of plausible band",
                m.name
            );
        }
    }

    #[test]
    fn pinning_matters_most_on_many_node_machines() {
        // Paper: unpinned M4-12 shows "speedups of less than 6" with 48
        // cores; pinned reaches 34x.
        let w = WorkloadSize::europe();
        let m = MachineProfile::m4_12();
        let free = predict_phast(&m, &w, 48, 1, Placement::Free);
        let pinned = predict_phast(&m, &w, 48, 1, Placement::Pinned);
        let gain = free.per_tree.as_secs_f64() / pinned.per_tree.as_secs_f64();
        assert!(gain > 3.0, "pinning gain on M4-12 only {gain:.1}x");
        // Single-node M1-4: pinning is a no-op.
        let m = MachineProfile::m1_4();
        let free = predict_phast(&m, &w, 4, 1, Placement::Free);
        let pinned = predict_phast(&m, &w, 4, 1, Placement::Pinned);
        assert!(
            (free.per_tree.as_secs_f64() - pinned.per_tree.as_secs_f64()).abs()
                / pinned.per_tree.as_secs_f64()
                < 0.25,
            "pinning should not matter on one node"
        );
    }

    #[test]
    fn m4_12_all_cores_approaches_gphast_scale() {
        // Paper Table VI: M4-12 with 48 cores and k=16 reaches 2.52 ms —
        // "almost as fast as GPHAST". The model should land in single-digit
        // milliseconds.
        let w = WorkloadSize::europe();
        let m = MachineProfile::m4_12();
        let p = predict_phast(&m, &w, 48, 16, Placement::Pinned);
        let v = ms(p.per_tree);
        assert!((1.0..20.0).contains(&v), "M4-12 k=16 all-cores: {v:.2} ms");
    }

    #[test]
    fn more_cores_never_hurt_when_pinned() {
        let w = WorkloadSize::europe();
        for m in MachineProfile::all() {
            let mut last = f64::INFINITY;
            for t in 1..=m.cores {
                let p = predict_phast(&m, &w, t, 1, Placement::Pinned);
                let v = p.per_tree.as_secs_f64();
                assert!(
                    v <= last * 1.0001,
                    "{}: {t} threads slower than {} threads",
                    m.name,
                    t - 1
                );
                last = v;
            }
        }
    }

    #[test]
    fn free_placement_never_beats_pinned() {
        let w = WorkloadSize::europe();
        for m in MachineProfile::all() {
            for t in [1, m.cores / 2, m.cores] {
                let free = predict_phast(&m, &w, t.max(1), 1, Placement::Free);
                let pinned = predict_phast(&m, &w, t.max(1), 1, Placement::Pinned);
                assert!(
                    free.per_tree >= pinned.per_tree,
                    "{} at {t} threads",
                    m.name
                );
                let dfree = predict_dijkstra(&m, &w, t.max(1), Placement::Free);
                let dpin = predict_dijkstra(&m, &w, t.max(1), Placement::Pinned);
                assert!(dfree.per_tree >= dpin.per_tree);
            }
        }
    }
}
