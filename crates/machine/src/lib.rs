//! Analytical performance model of the paper's five CPU platforms.
//!
//! # Substitution note (see `DESIGN.md`)
//!
//! Table V of the paper measures Dijkstra and PHAST on five machines
//! (M2-1 … M4-12) spanning one to eight NUMA nodes. Those machines are not
//! available here, so — like the GPU simulator in `phast-gpu` — this crate
//! substitutes a *model*: each machine is described by its published
//! specification (Table IV), and the two algorithms by their memory-access
//! character:
//!
//! * **PHAST** is bandwidth-bound (Section VIII-B: within 2.6× of a pure
//!   sequential scan). Its time is the swept bytes over the *effective*
//!   bandwidth the thread placement can reach, times a machine-independent
//!   sweep inefficiency calibrated on M1-4.
//! * **Dijkstra** is latency-bound (dependent random accesses through a
//!   priority queue). Its time is dominated by `n + m` dependent cache
//!   misses at DRAM latency, with a machine-independent constant also
//!   calibrated on M1-4.
//!
//! NUMA enters through the placement policy: *pinned* threads use every
//! node's local bandwidth; *free* (unpinned) threads migrate and pay
//! remote-access penalties, modeled as being limited to a single node's
//! bandwidth plus a latency surcharge — which is exactly the behaviour the
//! paper reports ("on M4-12 we observe speedups of less than 6 when using
//! all 48 cores" unpinned, versus 34 pinned).
//!
//! The model is *falsifiable*: the tests check its predictions against the
//! paper's published anchor measurements (Table I, Table V's ratios,
//! Table VI) within a stated tolerance.

pub mod model;
pub mod profiles;

pub use model::{predict_dijkstra, predict_phast, Placement, Prediction, WorkloadSize};
pub use profiles::MachineProfile;
