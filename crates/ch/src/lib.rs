//! Contraction hierarchies (CH), the preprocessing PHAST builds on.
//!
//! CH (Geisberger et al. \[8\]; Section II-B of the PHAST paper) shortcuts
//! vertices in an importance order: removing a vertex `v` adds an arc
//! `(u, w)` whenever `(u, v)·(v, w)` is the only shortest `u`-`w` path in
//! the current graph. The output is the shortcut set `A+`, a rank per
//! vertex, and — crucial for PHAST — a *level* per vertex such that every
//! downward arc strictly decreases the level (Lemma 4.1).
//!
//! This implementation follows the paper's engineering choices
//! (Section VIII-A):
//!
//! * priority `2·ED(u) + CN(u) + H(u) + 5·L(u)`, with each incident arc's
//!   contribution to `H` bounded by 3;
//! * witness searches bounded to 5 hops while the average degree of the
//!   uncontracted graph is below 5, 10 hops below 10, unlimited beyond;
//! * lazy-update ordering (re-evaluate on pop, reinsert if no longer
//!   minimal);
//! * parallel priority re-evaluation of the contracted vertex's neighbours.
//!
//! On top of the sequential reference ordering, the default contractor
//! batches whole *rounds* of independent low-priority vertices and contracts
//! them in parallel — see [`contract::Contractor`] — with a bit-identical
//! result for any thread count.

pub mod contract;
pub mod hierarchy;
pub mod query;

pub use contract::{contract_graph, resolve_threads, with_threads, ContractionConfig, Contractor};
pub use hierarchy::Hierarchy;
pub use query::{ChQuery, UpwardSearch};
