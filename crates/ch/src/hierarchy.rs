//! The preprocessing output: ranks, levels, and the two upward search
//! graphs.

use phast_graph::{Csr, Vertex, Weight};

/// Sentinel "this arc is original, not a shortcut".
pub const NO_MIDDLE: Vertex = Vertex::MAX;

/// A contraction hierarchy over a graph with `n` vertices.
///
/// Both search graphs are stored in **original vertex IDs**; `phast-core`
/// relabels them by level for the cache-friendly sweep.
///
/// * [`Self::forward_up`]: out-arcs `(v, w)` of `A ∪ A+` with
///   `rank(v) < rank(w)` — the graph `G↑` scanned by the forward CH search.
/// * [`Self::backward_up`]: for each `v`, arcs `(v, u)` such that
///   `(u, v) ∈ A ∪ A+` and `rank(u) > rank(v)`. Read as out-arcs this is the
///   backward query search graph; read as *incoming* arcs it is exactly the
///   downward graph `G↓` the PHAST linear sweep relaxes.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Hierarchy {
    /// `rank[v]`: position of `v` in the contraction order (0 = first
    /// contracted, least important).
    pub rank: Vec<u32>,
    /// `level[v]`: the PHAST level, with Lemma 4.1's guarantee that every
    /// downward arc strictly decreases the level.
    pub level: Vec<u32>,
    /// Upward out-arcs (forward search graph `G↑`).
    pub forward_up: Csr,
    /// Middle vertex per `forward_up` arc ([`NO_MIDDLE`] for original arcs).
    pub forward_middle: Vec<Vertex>,
    /// Upward in-arcs stored as out-arcs of the lower endpoint (backward
    /// search graph, and `G↓` of the sweep).
    pub backward_up: Csr,
    /// Middle vertex per `backward_up` arc.
    pub backward_middle: Vec<Vertex>,
    /// Number of shortcut arcs added (shortcuts counted once per direction
    /// they appear in).
    pub num_shortcuts: usize,
}

impl Hierarchy {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Number of levels (`max level + 1`); 0 for the empty hierarchy.
    pub fn num_levels(&self) -> usize {
        self.level.iter().max().map_or(0, |&m| m as usize + 1)
    }

    /// Figure 1 of the paper: how many vertices sit on each level.
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_levels()];
        for &l in &self.level {
            hist[l as usize] += 1;
        }
        hist
    }

    /// Checks the structural invariants:
    /// ranks are a permutation, both graphs only contain rank-increasing
    /// arcs, and levels strictly decrease along downward arcs (Lemma 4.1).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        for &r in &self.rank {
            let r = r as usize;
            if r >= n || seen[r] {
                return Err("rank is not a permutation".into());
            }
            seen[r] = true;
        }
        for (v, w, _) in self.forward_up.iter_arcs() {
            if self.rank[v as usize] >= self.rank[w as usize] {
                return Err(format!("forward_up arc ({v},{w}) does not go up in rank"));
            }
            if self.level[v as usize] >= self.level[w as usize] {
                return Err(format!("forward_up arc ({v},{w}) does not go up in level"));
            }
        }
        for (v, u, _) in self.backward_up.iter_arcs() {
            if self.rank[v as usize] >= self.rank[u as usize] {
                return Err(format!("backward_up arc ({v},{u}) does not go up in rank"));
            }
            if self.level[v as usize] >= self.level[u as usize] {
                return Err(format!("backward_up arc ({v},{u}) does not go up in level"));
            }
        }
        if self.forward_middle.len() != self.forward_up.num_arcs()
            || self.backward_middle.len() != self.backward_up.num_arcs()
        {
            return Err("middle-vertex arrays out of sync with arc lists".into());
        }
        Ok(())
    }

    /// Total search-graph arcs (paper: "33.8 million arcs each" on Europe).
    pub fn num_search_arcs(&self) -> usize {
        self.forward_up.num_arcs() + self.backward_up.num_arcs()
    }

    /// Heap bytes of the hierarchy (for the memory columns of Table VI).
    pub fn memory_bytes(&self) -> usize {
        self.forward_up.memory_bytes()
            + self.backward_up.memory_bytes()
            + (self.rank.len() + self.level.len()) * 4
            + (self.forward_middle.len() + self.backward_middle.len()) * 4
    }

    /// Expands one arc of the hierarchy into the underlying original-graph
    /// path (exclusive of `from`, inclusive of `to`), recursively unpacking
    /// shortcut middles. `forward` selects which search graph the arc came
    /// from.
    pub fn unpack_arc(
        &self,
        from: Vertex,
        to: Vertex,
        weight: Weight,
        out: &mut Vec<Vertex>,
    ) {
        // Find the arc in either search graph to learn its middle vertex.
        let middle = self.find_middle(from, to, weight);
        match middle {
            None => out.push(to),
            Some(m) => {
                let (w1, w2) = self.split_weights(from, m, to, weight);
                self.unpack_arc(from, m, w1, out);
                self.unpack_arc(m, to, w2, out);
            }
        }
    }

    /// Locates the middle vertex of arc `(from, to)` with weight `weight`,
    /// searching both directions (arcs live wherever their lower endpoint
    /// is). Returns `None` for original arcs.
    fn find_middle(&self, from: Vertex, to: Vertex, weight: Weight) -> Option<Vertex> {
        if self.rank[from as usize] < self.rank[to as usize] {
            // Upward arc: stored at `from` in forward_up.
            let range = self.forward_up.arc_range(from);
            for (i, a) in self.forward_up.out(from).iter().enumerate() {
                if a.head == to && a.weight == weight {
                    let m = self.forward_middle[range.start + i];
                    return (m != NO_MIDDLE).then_some(m);
                }
            }
        } else {
            // Downward arc: stored at `to` in backward_up.
            let range = self.backward_up.arc_range(to);
            for (i, a) in self.backward_up.out(to).iter().enumerate() {
                if a.head == from && a.weight == weight {
                    let m = self.backward_middle[range.start + i];
                    return (m != NO_MIDDLE).then_some(m);
                }
            }
        }
        panic!("arc ({from},{to},{weight}) not found in hierarchy");
    }

    /// Splits a shortcut's weight over its two halves by looking up the
    /// weight of `(from, middle)`; the remainder belongs to `(middle, to)`.
    fn split_weights(
        &self,
        from: Vertex,
        middle: Vertex,
        _to: Vertex,
        total: Weight,
    ) -> (Weight, Weight) {
        // (from, middle): middle was contracted before both endpoints of the
        // shortcut, so rank(middle) < rank(from); the arc is stored at
        // `middle` in backward_up (as an arc middle <- from).
        let w1 = self
            .backward_up
            .out(middle)
            .iter()
            .filter(|a| a.head == from)
            .map(|a| a.weight)
            .filter(|&w| w <= total)
            .min()
            .expect("shortcut half (from,middle) must exist");
        (w1, total - w1)
    }
}

#[cfg(test)]
mod tests {
    // Construction-dependent tests live in `contract.rs`; here we test the
    // pure accessors on a hand-built hierarchy.
    use super::*;
    use phast_graph::Arc;

    fn tiny() -> Hierarchy {
        // 3 vertices: rank 0,1,2 = vertex 0,1,2; level equal to rank.
        // Upward arcs 0->1 (w 1), 1->2 (w 2); downward arc 2->0 stored at 0.
        let forward_up = Csr::from_arc_list(3, vec![(0, Arc::new(1, 1)), (1, Arc::new(2, 2))]);
        let backward_up = Csr::from_arc_list(3, vec![(0, Arc::new(2, 5))]);
        Hierarchy {
            rank: vec![0, 1, 2],
            level: vec![0, 1, 2],
            forward_middle: vec![NO_MIDDLE; forward_up.num_arcs()],
            backward_middle: vec![NO_MIDDLE; backward_up.num_arcs()],
            forward_up,
            backward_up,
            num_shortcuts: 0,
        }
    }

    #[test]
    fn histogram_counts_levels() {
        let h = tiny();
        assert_eq!(h.level_histogram(), vec![1, 1, 1]);
        assert_eq!(h.num_levels(), 3);
    }

    #[test]
    fn validate_accepts_wellformed() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_rejects_rank_violation() {
        let mut h = tiny();
        h.rank = vec![2, 1, 0];
        assert!(h.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_rank_permutation() {
        let mut h = tiny();
        h.rank = vec![0, 0, 2];
        assert!(h.validate().is_err());
    }

    #[test]
    fn search_arc_count() {
        assert_eq!(tiny().num_search_arcs(), 3);
    }
}
