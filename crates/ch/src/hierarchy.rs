//! The preprocessing output: ranks, levels, and the two upward search
//! graphs.

use phast_graph::{Csr, Vertex, Weight};

/// Sentinel "this arc is original, not a shortcut".
pub const NO_MIDDLE: Vertex = Vertex::MAX;

/// A contraction hierarchy over a graph with `n` vertices.
///
/// Both search graphs are stored in **original vertex IDs**; `phast-core`
/// relabels them by level for the cache-friendly sweep.
///
/// * [`Self::forward_up`]: out-arcs `(v, w)` of `A ∪ A+` with
///   `rank(v) < rank(w)` — the graph `G↑` scanned by the forward CH search.
/// * [`Self::backward_up`]: for each `v`, arcs `(v, u)` such that
///   `(u, v) ∈ A ∪ A+` and `rank(u) > rank(v)`. Read as out-arcs this is the
///   backward query search graph; read as *incoming* arcs it is exactly the
///   downward graph `G↓` the PHAST linear sweep relaxes.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Hierarchy {
    /// `rank[v]`: position of `v` in the contraction order (0 = first
    /// contracted, least important).
    pub rank: Vec<u32>,
    /// `level[v]`: the PHAST level, with Lemma 4.1's guarantee that every
    /// downward arc strictly decreases the level.
    pub level: Vec<u32>,
    /// Upward out-arcs (forward search graph `G↑`).
    pub forward_up: Csr,
    /// Middle vertex per `forward_up` arc ([`NO_MIDDLE`] for original arcs).
    pub forward_middle: Vec<Vertex>,
    /// Upward in-arcs stored as out-arcs of the lower endpoint (backward
    /// search graph, and `G↓` of the sweep).
    pub backward_up: Csr,
    /// Middle vertex per `backward_up` arc.
    pub backward_middle: Vec<Vertex>,
    /// Number of shortcut arcs added (shortcuts counted once per direction
    /// they appear in).
    pub num_shortcuts: usize,
}

impl Hierarchy {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Number of levels (`max level + 1`); 0 for the empty hierarchy.
    pub fn num_levels(&self) -> usize {
        self.level.iter().max().map_or(0, |&m| m as usize + 1)
    }

    /// Figure 1 of the paper: how many vertices sit on each level.
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_levels()];
        for &l in &self.level {
            hist[l as usize] += 1;
        }
        hist
    }

    /// Checks the structural invariants:
    /// ranks are a permutation, both graphs only contain rank-increasing
    /// arcs, and levels strictly decrease along downward arcs (Lemma 4.1).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        for &r in &self.rank {
            let r = r as usize;
            if r >= n || seen[r] {
                return Err("rank is not a permutation".into());
            }
            seen[r] = true;
        }
        for (v, w, _) in self.forward_up.iter_arcs() {
            if self.rank[v as usize] >= self.rank[w as usize] {
                return Err(format!("forward_up arc ({v},{w}) does not go up in rank"));
            }
            if self.level[v as usize] >= self.level[w as usize] {
                return Err(format!("forward_up arc ({v},{w}) does not go up in level"));
            }
        }
        for (v, u, _) in self.backward_up.iter_arcs() {
            if self.rank[v as usize] >= self.rank[u as usize] {
                return Err(format!("backward_up arc ({v},{u}) does not go up in rank"));
            }
            if self.level[v as usize] >= self.level[u as usize] {
                return Err(format!("backward_up arc ({v},{u}) does not go up in level"));
            }
        }
        if self.forward_middle.len() != self.forward_up.num_arcs()
            || self.backward_middle.len() != self.backward_up.num_arcs()
        {
            return Err("middle-vertex arrays out of sync with arc lists".into());
        }
        Ok(())
    }

    /// Total search-graph arcs (paper: "33.8 million arcs each" on Europe).
    pub fn num_search_arcs(&self) -> usize {
        self.forward_up.num_arcs() + self.backward_up.num_arcs()
    }

    /// Heap bytes of the hierarchy (for the memory columns of Table VI).
    pub fn memory_bytes(&self) -> usize {
        self.forward_up.memory_bytes()
            + self.backward_up.memory_bytes()
            + (self.rank.len() + self.level.len()) * 4
            + (self.forward_middle.len() + self.backward_middle.len()) * 4
    }

    /// Expands one arc of the hierarchy into the underlying original-graph
    /// path (exclusive of `from`, inclusive of `to`), unpacking shortcut
    /// middles with an explicit work stack — shortcut chains nest up to
    /// `n` deep on corridor graphs, far past the call-stack budget.
    pub fn unpack_arc(
        &self,
        from: Vertex,
        to: Vertex,
        weight: Weight,
        out: &mut Vec<Vertex>,
    ) {
        let mut work = vec![(from, to, weight)];
        while let Some((f, t, w)) = work.pop() {
            // Find the arc in either search graph to learn its middle vertex.
            match self.find_middle(f, t, w) {
                None => out.push(t),
                Some(m) => {
                    let (w1, w2) = self.split_weights(f, m, t, w);
                    // Right half below the left so the left pops (and thus
                    // emits) first, preserving path order.
                    work.push((m, t, w2));
                    work.push((f, m, w1));
                }
            }
        }
    }

    /// Locates the middle vertex of arc `(from, to)` with weight `weight`,
    /// searching both directions (arcs live wherever their lower endpoint
    /// is). Returns `None` for original arcs.
    fn find_middle(&self, from: Vertex, to: Vertex, weight: Weight) -> Option<Vertex> {
        if self.rank[from as usize] < self.rank[to as usize] {
            // Upward arc: stored at `from` in forward_up.
            let range = self.forward_up.arc_range(from);
            for (i, a) in self.forward_up.out(from).iter().enumerate() {
                if a.head == to && a.weight == weight {
                    let m = self.forward_middle[range.start + i];
                    return (m != NO_MIDDLE).then_some(m);
                }
            }
        } else {
            // Downward arc: stored at `to` in backward_up.
            let range = self.backward_up.arc_range(to);
            for (i, a) in self.backward_up.out(to).iter().enumerate() {
                if a.head == from && a.weight == weight {
                    let m = self.backward_middle[range.start + i];
                    return (m != NO_MIDDLE).then_some(m);
                }
            }
        }
        panic!("arc ({from},{to},{weight}) not found in hierarchy");
    }

    /// Splits a shortcut's weight over its two halves. `middle` was
    /// contracted before both endpoints, so the first half `(from, middle)`
    /// is stored at `middle` in `backward_up` and the second half
    /// `(middle, to)` at `middle` in `forward_up`.
    ///
    /// With parallel arcs, several `(from, middle)` weights can be
    /// `<= total`, and the smallest is not necessarily the half this
    /// shortcut was built from — pairing it blindly leaves a remainder that
    /// matches no `(middle, to)` arc and makes `find_middle` panic. Only a
    /// `w1` whose complement `total - w1` actually exists as a
    /// `(middle, to)` weight is a valid split.
    fn split_weights(
        &self,
        from: Vertex,
        middle: Vertex,
        to: Vertex,
        total: Weight,
    ) -> (Weight, Weight) {
        let w1 = self
            .backward_up
            .out(middle)
            .iter()
            .filter(|a| a.head == from && a.weight <= total)
            .map(|a| a.weight)
            .filter(|&w1| {
                let w2 = total - w1;
                self.forward_up
                    .out(middle)
                    .iter()
                    .any(|a| a.head == to && a.weight == w2)
            })
            .min()
            .expect("no (from,middle)+(middle,to) pair sums to the shortcut weight");
        (w1, total - w1)
    }
}

#[cfg(test)]
mod tests {
    // Construction-dependent tests live in `contract.rs`; here we test the
    // pure accessors on a hand-built hierarchy.
    use super::*;
    use phast_graph::Arc;

    fn tiny() -> Hierarchy {
        // 3 vertices: rank 0,1,2 = vertex 0,1,2; level equal to rank.
        // Upward arcs 0->1 (w 1), 1->2 (w 2); downward arc 2->0 stored at 0.
        let forward_up = Csr::from_arc_list(3, vec![(0, Arc::new(1, 1)), (1, Arc::new(2, 2))]);
        let backward_up = Csr::from_arc_list(3, vec![(0, Arc::new(2, 5))]);
        Hierarchy {
            rank: vec![0, 1, 2],
            level: vec![0, 1, 2],
            forward_middle: vec![NO_MIDDLE; forward_up.num_arcs()],
            backward_middle: vec![NO_MIDDLE; backward_up.num_arcs()],
            forward_up,
            backward_up,
            num_shortcuts: 0,
        }
    }

    #[test]
    fn histogram_counts_levels() {
        let h = tiny();
        assert_eq!(h.level_histogram(), vec![1, 1, 1]);
        assert_eq!(h.num_levels(), 3);
    }

    #[test]
    fn validate_accepts_wellformed() {
        tiny().validate().unwrap();
    }

    #[test]
    fn validate_rejects_rank_violation() {
        let mut h = tiny();
        h.rank = vec![2, 1, 0];
        assert!(h.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_rank_permutation() {
        let mut h = tiny();
        h.rank = vec![0, 0, 2];
        assert!(h.validate().is_err());
    }

    #[test]
    fn search_arc_count() {
        assert_eq!(tiny().num_search_arcs(), 3);
    }

    #[test]
    fn unpack_pairs_parallel_arc_halves_correctly() {
        // Vertices: middle 0 (rank 0), u = 1 (rank 1), w = 2 (rank 2).
        // Two parallel arcs u -> 0 with weights 2 and 6, one arc 0 -> 2 with
        // weight 4, and the shortcut u -> 2 with weight 10 built from the
        // *heavier* parallel arc (6 + 4). A split that grabs the minimum
        // (from, middle) weight <= total would pick 2, leaving remainder 8,
        // which matches no (0, 2) arc; the complement rule must pick 6.
        let forward_up = Csr::from_arc_list(
            3,
            vec![(0, Arc::new(2, 4)), (1, Arc::new(2, 10))],
        );
        let backward_up = Csr::from_arc_list(
            3,
            vec![(0, Arc::new(1, 2)), (0, Arc::new(1, 6))],
        );
        let h = Hierarchy {
            rank: vec![0, 1, 2],
            level: vec![0, 1, 2],
            forward_middle: vec![NO_MIDDLE, 0],
            backward_middle: vec![NO_MIDDLE, NO_MIDDLE],
            forward_up,
            backward_up,
            num_shortcuts: 1,
        };
        h.validate().unwrap();
        let mut path = Vec::new();
        h.unpack_arc(1, 2, 10, &mut path);
        assert_eq!(path, vec![0, 2], "shortcut must unpack via the 6+4 pair");
    }

    #[test]
    fn unpack_survives_deep_shortcut_chains() {
        // The hierarchy a corridor produces: directed path 0 -> 1 -> ... ->
        // n-1 (unit weights) with interior vertices contracted left to
        // right, each contraction extending one nested shortcut 0 -> i+1 via
        // i. The top arc 0 -> n-1 therefore unpacks through a left-leaning
        // chain of depth ~n, which overflowed the call stack when unpacking
        // recursed per half.
        let n: usize = 100_000;
        let last = (n - 1) as Vertex;
        let mut fwd = Vec::with_capacity(n - 1);
        let mut fwd_middle = Vec::with_capacity(n - 1);
        // Vertex 0 is contracted second to last; its lone out-arc is the
        // full-length shortcut via n-2.
        fwd.push((0, Arc::new(last, last)));
        fwd_middle.push(last - 1);
        let mut bwd = Vec::with_capacity(n - 2);
        let mut bwd_middle = Vec::with_capacity(n - 2);
        for i in 1..=(n - 2) as Vertex {
            // Interior vertex i: original out-arc i -> i+1, and the incoming
            // (possibly shortcut) arc 0 -> i of weight i at contraction time.
            fwd.push((i, Arc::new(i + 1, 1)));
            fwd_middle.push(NO_MIDDLE);
            bwd.push((i, Arc::new(0, i)));
            bwd_middle.push(if i >= 2 { i - 1 } else { NO_MIDDLE });
        }
        let mut rank: Vec<u32> = (0..n as u32).map(|i| i.wrapping_sub(1)).collect();
        rank[0] = (n - 2) as u32;
        rank[n - 1] = (n - 1) as u32;
        let h = Hierarchy {
            level: rank.clone(),
            rank,
            forward_middle: fwd_middle,
            backward_middle: bwd_middle,
            forward_up: Csr::from_arc_list(n, fwd),
            backward_up: Csr::from_arc_list(n, bwd),
            num_shortcuts: n - 2,
        };
        h.validate().unwrap();
        let mut path = Vec::new();
        h.unpack_arc(0, last, last, &mut path);
        let want: Vec<Vertex> = (1..n as Vertex).collect();
        assert_eq!(path, want, "deep chain must unpack to the full corridor");
    }
}
