//! CH preprocessing: importance ordering and vertex contraction.
//!
//! Two contractors share the priority function and witness machinery:
//!
//! * [`Contractor::ParallelRounds`] (the default) contracts an independent
//!   set of locally-minimal-priority vertices per round, computing all their
//!   shortcuts in parallel — the scheme of *Doing More for Less — Cache-Aware
//!   Parallel CH Preprocessing* (arXiv:1208.2543) and *Parallel Contraction
//!   Hierarchies Can Be Efficient and Scalable* (arXiv:2412.18008). The
//!   result is bit-identical for any thread count: selection depends only on
//!   deterministic priorities (ties broken by vertex id), each vertex's
//!   shortcuts are computed against the frozen round-start graph, and
//!   contractions are applied sequentially in `(priority, id)` order.
//! * [`Contractor::LazyHeap`] is the classic one-vertex-at-a-time loop with
//!   lazy priority updates, kept for differential testing and as the
//!   reference ordering.
//!
//! Witness searches run on flat timestamped arrays and a reusable bounded
//! heap ([`phast_graph::scratch`]) instead of a hash map per search, so the
//! hottest preprocessing path performs no steady-state allocation.

use crate::hierarchy::{Hierarchy, NO_MIDDLE};
use phast_graph::scratch::{LocalHeap, TimestampedDist};
use phast_graph::{Arc, Csr, Graph, Vertex, Weight, INF};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which contraction strategy [`contract_graph`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contractor {
    /// Round-based: contract an independent set of local priority minima per
    /// round, shortcuts computed in parallel. Bit-deterministic for any
    /// thread count.
    ParallelRounds,
    /// Classic sequential lazy-heap ordering (one vertex at a time, lazy
    /// priority recomputation on pop).
    LazyHeap,
}

/// Tuning knobs for the contraction. The defaults are the paper's
/// (Section VIII-A).
#[derive(Clone, Debug)]
pub struct ContractionConfig {
    /// `(avg_degree_threshold, hop_limit)` stages: the witness search is
    /// bounded by `hop_limit` while the average degree of the uncontracted
    /// graph is at most the threshold. Beyond the last stage the hop limit
    /// is unbounded.
    pub hop_stages: Vec<(f64, u32)>,
    /// Safety cap on settled vertices per witness search in the unbounded
    /// stage. Capping only ever *adds* shortcuts; correctness is unaffected.
    pub witness_settle_cap: usize,
    /// Coefficient of the edge difference `ED(u)` in the priority.
    pub ed_coef: i64,
    /// Coefficient of the contracted-neighbours count `CN(u)`.
    pub cn_coef: i64,
    /// Coefficient of the shortcut-hops term `H(u)`.
    pub h_coef: i64,
    /// Coefficient of the level term `L(u)`.
    pub level_coef: i64,
    /// Cap on each incident arc's contribution to `H(u)`.
    pub h_arc_cap: u32,
    /// Contraction strategy.
    pub contractor: Contractor,
    /// Worker threads for the parallel phases. `0` means: honour the
    /// `PHAST_THREADS` environment variable if set, else use the ambient
    /// rayon pool. Any positive value builds a dedicated pool of that size
    /// for the duration of the call.
    pub threads: usize,
}

impl Default for ContractionConfig {
    fn default() -> Self {
        Self {
            hop_stages: vec![(5.0, 5), (10.0, 10)],
            witness_settle_cap: 2000,
            ed_coef: 2,
            cn_coef: 1,
            h_coef: 1,
            level_coef: 5,
            h_arc_cap: 3,
            contractor: Contractor::ParallelRounds,
            threads: 0,
        }
    }
}

impl ContractionConfig {
    /// The paper's priority `2·ED + CN + H + 5·L` (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Pure edge-difference ordering — the simplest classic priority. The
    /// paper notes its term "has limited influence on the performance of
    /// PHAST. It works well with any function that produces a good
    /// contraction hierarchy"; this preset is the ablation baseline.
    pub fn edge_difference_only() -> Self {
        Self {
            ed_coef: 1,
            cn_coef: 0,
            h_coef: 0,
            level_coef: 0,
            ..Self::default()
        }
    }

    /// A strongly level-averse ordering: flattens the hierarchy (fewer
    /// levels, which helps the GPU's one-kernel-per-level regime) at the
    /// cost of more shortcuts.
    pub fn flat_levels() -> Self {
        Self {
            level_coef: 20,
            ..Self::default()
        }
    }

    /// The sequential reference contractor (lazy-heap ordering).
    pub fn sequential() -> Self {
        Self {
            contractor: Contractor::LazyHeap,
            ..Self::default()
        }
    }
}

/// Resolves a thread-count knob: a positive value wins; `0` falls back to
/// the `PHAST_THREADS` environment variable (malformed values are warned
/// about and ignored); `0` with no env var means "ambient rayon pool".
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    match std::env::var("PHAST_THREADS") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| {
            eprintln!("warning: ignoring malformed PHAST_THREADS={s:?}");
            0
        }),
        Err(_) => 0,
    }
}

/// Runs `f` with rayon parallelism capped at `threads` workers (after
/// [`resolve_threads`]); `0` runs on the ambient pool. Used by the
/// contraction entry point and by recontraction/customization callers that
/// expose a `--threads` knob.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let t = resolve_threads(threads);
    if t == 0 {
        f()
    } else {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("failed to build rayon pool")
            .install(f)
    }
}

/// An arc of the dynamic (partially contracted) graph.
#[derive(Clone, Copy, Debug)]
struct DynArc {
    /// The other endpoint (head for out-arcs, tail for in-arcs).
    other: Vertex,
    weight: Weight,
    /// Number of original arcs this (possibly shortcut) arc represents.
    hops: u32,
    /// Middle vertex if this is a shortcut, [`NO_MIDDLE`] otherwise.
    middle: Vertex,
}

/// A shortcut the contraction of some vertex would require.
#[derive(Clone, Copy, Debug)]
struct Shortcut {
    from: Vertex,
    to: Vertex,
    weight: Weight,
    hops_in: u32,
    hops_out: u32,
}

/// The dynamic graph: adjacency among uncontracted vertices only.
struct DynGraph {
    out: Vec<Vec<DynArc>>,
    inn: Vec<Vec<DynArc>>,
    contracted: Vec<bool>,
    /// Vertices selected for contraction in the current parallel round.
    /// Witness searches treat them like contracted vertices, so every
    /// witness found during a round survives the whole round no matter in
    /// which order the round's contractions are applied. (Witnesses *through*
    /// a selected vertex are missed, which only adds redundant shortcuts —
    /// the safe direction.) Always all-false outside a round.
    round_sel: Vec<bool>,
    remaining_vertices: usize,
    remaining_arcs: usize,
}

impl DynGraph {
    fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        let mut arcs = 0usize;
        for (u, v, w) in g.forward().iter_arcs() {
            if u == v {
                continue; // self-loops never matter for shortest paths
            }
            let a = DynArc {
                other: v,
                weight: w,
                hops: 1,
                middle: NO_MIDDLE,
            };
            out[u as usize].push(a);
            inn[v as usize].push(DynArc { other: u, ..a });
            arcs += 1;
        }
        Self {
            out,
            inn,
            contracted: vec![false; n],
            round_sel: vec![false; n],
            remaining_vertices: n,
            remaining_arcs: arcs,
        }
    }

    fn avg_degree(&self) -> f64 {
        if self.remaining_vertices == 0 {
            0.0
        } else {
            self.remaining_arcs as f64 / self.remaining_vertices as f64
        }
    }

    /// Adds `u -> w` or improves an existing arc if the new one is shorter.
    fn add_or_improve(&mut self, sc: &Shortcut, middle: Vertex) {
        let hops = sc.hops_in + sc.hops_out;
        if let Some(existing) = self.out[sc.from as usize]
            .iter_mut()
            .find(|a| a.other == sc.to)
        {
            if existing.weight <= sc.weight {
                return;
            }
            existing.weight = sc.weight;
            existing.hops = hops;
            existing.middle = middle;
            let back = self.inn[sc.to as usize]
                .iter_mut()
                .find(|a| a.other == sc.from)
                .expect("in/out lists out of sync");
            back.weight = sc.weight;
            back.hops = hops;
            back.middle = middle;
            return;
        }
        self.out[sc.from as usize].push(DynArc {
            other: sc.to,
            weight: sc.weight,
            hops,
            middle,
        });
        self.inn[sc.to as usize].push(DynArc {
            other: sc.from,
            weight: sc.weight,
            hops,
            middle,
        });
        self.remaining_arcs += 1;
    }

    /// Removes `v` from its neighbours' adjacency lists and drops its own.
    /// Returns the (deduplicated) set of former neighbours.
    fn remove_vertex(&mut self, v: Vertex) -> Vec<Vertex> {
        let mut neighbours: Vec<Vertex> = Vec::new();
        let out = std::mem::take(&mut self.out[v as usize]);
        let inn = std::mem::take(&mut self.inn[v as usize]);
        self.remaining_arcs -= out.len() + inn.len();
        for a in &out {
            let list = &mut self.inn[a.other as usize];
            list.retain(|b| b.other != v);
            neighbours.push(a.other);
        }
        for a in &inn {
            let list = &mut self.out[a.other as usize];
            list.retain(|b| b.other != v);
            neighbours.push(a.other);
        }
        self.contracted[v as usize] = true;
        self.remaining_vertices -= 1;
        neighbours.sort_unstable();
        neighbours.dedup();
        neighbours
    }

    /// Bounded witness search: shortest distances from `from` in the current
    /// graph avoiding `excluded` (and any round-selected vertices), not
    /// exceeding `bound`, using at most `hop_limit` arcs per path and
    /// settling at most `settle_cap` vertices. Returns the number of
    /// vertices settled.
    ///
    /// Terminates as soon as the popped distance exceeds `bound` (pops are
    /// monotone in distance, so nothing useful remains) or the settle cap is
    /// reached — it never drains the rest of the heap.
    ///
    /// The result is an *upper bound* on true distances (hop/settle limits
    /// may hide better paths), which is the safe direction: missing a
    /// witness only adds a redundant shortcut.
    fn witness_distances(
        &self,
        scratch: &mut WitnessScratch,
        from: Vertex,
        excluded: Vertex,
        bound: Weight,
        hop_limit: u32,
        settle_cap: usize,
    ) -> usize {
        phast_obs::prep::add_witness_searches(1);
        scratch.dist.begin(self.out.len());
        scratch.heap.clear();
        scratch.dist.set(from, 0);
        scratch.heap.push((0, 0, from));
        let mut settled = 0usize;
        while let Some((d, hops, v)) = scratch.heap.pop() {
            if d > bound {
                break; // monotone pops: every remaining entry exceeds the bound
            }
            if d > scratch.dist.get(v) {
                continue; // stale entry
            }
            settled += 1;
            if hops < hop_limit {
                for a in &self.out[v as usize] {
                    let o = a.other as usize;
                    if a.other == excluded || self.contracted[o] || self.round_sel[o] {
                        continue;
                    }
                    let nd = d + a.weight;
                    if nd <= bound && nd < scratch.dist.get(a.other) {
                        scratch.dist.set(a.other, nd);
                        scratch.heap.push((nd, hops + 1, a.other));
                    }
                }
            }
            if settled >= settle_cap {
                break;
            }
        }
        settled
    }

    /// The shortcuts contracting `v` would require under the given limits.
    fn shortcuts_needed(
        &self,
        scratch: &mut WitnessScratch,
        v: Vertex,
        hop_limit: u32,
        settle_cap: usize,
    ) -> Vec<Shortcut> {
        let mut shortcuts = Vec::new();
        let inn = &self.inn[v as usize];
        let out = &self.out[v as usize];
        if inn.is_empty() || out.is_empty() {
            return shortcuts;
        }
        for ain in inn {
            let u = ain.other;
            debug_assert!(!self.contracted[u as usize]);
            // One search from u covers all targets w. Sums saturate at INF
            // so chains of near-maximal shortcut weights cannot wrap `u32`.
            let bound = out
                .iter()
                .filter(|a| a.other != u)
                .map(|a| (ain.weight + a.weight).min(INF))
                .max();
            let Some(bound) = bound else { continue };
            self.witness_distances(scratch, u, v, bound, hop_limit, settle_cap);
            for aout in out {
                let w = aout.other;
                if w == u {
                    continue;
                }
                // Saturate at INF (an unreachable-grade weight): keeps every
                // hierarchy weight <= INF, the invariant the query engines
                // rely on for wrap-free `u32` additions.
                let via = (ain.weight + aout.weight).min(INF);
                let witness = scratch.dist.get(w);
                if witness > via {
                    shortcuts.push(Shortcut {
                        from: u,
                        to: w,
                        weight: via,
                        hops_in: ain.hops,
                        hops_out: aout.hops,
                    });
                }
            }
        }
        shortcuts
    }
}

/// Heap bound for witness searches. Witness searches are already truncated
/// by hop and settle caps, so pruning heap overflow (deterministically, see
/// [`LocalHeap`]) loses nothing that the caps would have kept.
const WITNESS_HEAP_BOUND: usize = 4096;

/// Reusable scratch space for witness searches: flat timestamped distance
/// labels (`O(1)` reset, no hashing) and a bounded, buffer-reusing heap.
struct WitnessScratch {
    dist: TimestampedDist,
    heap: LocalHeap,
}

impl Default for WitnessScratch {
    fn default() -> Self {
        Self {
            dist: TimestampedDist::new(),
            heap: LocalHeap::with_bound(WITNESS_HEAP_BOUND),
        }
    }
}

/// Per-vertex bookkeeping for the priority term.
struct OrderState {
    level: Vec<u32>,
    contracted_neighbours: Vec<u32>,
}

fn priority(
    cfg: &ContractionConfig,
    dyng: &DynGraph,
    state: &OrderState,
    scratch: &mut WitnessScratch,
    v: Vertex,
    hop_limit: u32,
) -> i64 {
    let shortcuts = dyng.shortcuts_needed(scratch, v, hop_limit, cfg.witness_settle_cap);
    let removed = dyng.out[v as usize].len() + dyng.inn[v as usize].len();
    let ed = shortcuts.len() as i64 - removed as i64;
    let h: i64 = shortcuts
        .iter()
        .map(|s| (s.hops_in.min(cfg.h_arc_cap) + s.hops_out.min(cfg.h_arc_cap)) as i64)
        .sum();
    cfg.ed_coef * ed
        + cfg.cn_coef * i64::from(state.contracted_neighbours[v as usize])
        + cfg.h_coef * h
        + cfg.level_coef * i64::from(state.level[v as usize])
}

fn hop_limit_for(cfg: &ContractionConfig, avg: f64) -> u32 {
    for &(threshold, limit) in &cfg.hop_stages {
        if avg <= threshold {
            return limit;
        }
    }
    u32::MAX
}

/// Runs the full CH preprocessing on `g`.
pub fn contract_graph(g: &Graph, cfg: &ContractionConfig) -> Hierarchy {
    phast_obs::prep::reset();
    let h = with_threads(cfg.threads, || match cfg.contractor {
        Contractor::ParallelRounds => contract_rounds(g, cfg),
        Contractor::LazyHeap => contract_lazy(g, cfg),
    });
    debug_assert_eq!(h.validate(), Ok(()));
    h
}

/// Round-based parallel contraction.
///
/// Per round: (1) select every uncontracted vertex whose `(priority, id)`
/// key is a strict local minimum over its uncontracted neighbourhood — an
/// independent set, and non-empty because the global minimum always
/// qualifies; (2) compute each selected vertex's shortcuts in parallel
/// against the frozen round-start graph, with all selected vertices banned
/// from witness paths; (3) apply the contractions sequentially in
/// `(priority, id)` order; (4) recompute priorities of touched neighbours in
/// parallel.
///
/// Why the applies commute with the parallel computation: selected vertices
/// are pairwise non-adjacent, so (a) no contraction in the round mutates a
/// still-selected vertex's adjacency (its recorded hierarchy arcs equal the
/// round-start snapshot), (b) shortcut endpoints are neighbours of selected
/// vertices and hence never themselves selected, and (c) banning the whole
/// selected set from witness searches means every witness path found at
/// round start still exists when the later applies happen. Every step is
/// either data-parallel over a deterministically ordered list or sequential,
/// so the hierarchy is bit-identical for any thread count.
fn contract_rounds(g: &Graph, cfg: &ContractionConfig) -> Hierarchy {
    let n = g.num_vertices();
    let mut dyng = DynGraph::new(g);
    let mut state = OrderState {
        level: vec![0; n],
        contracted_neighbours: vec![0; n],
    };

    let mut hop_limit = hop_limit_for(cfg, dyng.avg_degree());
    let mut prio: Vec<i64> = (0..n as Vertex)
        .into_par_iter()
        .map_init(WitnessScratch::default, |scratch, v| {
            priority(cfg, &dyng, &state, scratch, v, hop_limit)
        })
        .collect();

    let mut alive: Vec<Vertex> = (0..n as Vertex).collect();
    let mut fwd_arcs: Vec<(Vertex, Arc, Vertex)> = Vec::new();
    let mut bwd_arcs: Vec<(Vertex, Arc, Vertex)> = Vec::new();
    let mut rank = vec![0u32; n];
    let mut next_rank = 0u32;
    let mut num_shortcuts = 0usize;

    while !alive.is_empty() {
        // 1. Independent set of strict local minima by (priority, id).
        // (prio, id) is a total order, so two adjacent vertices can never
        // both be local minima, and the global minimum always is one.
        let is_min: Vec<bool> = alive
            .par_iter()
            .map(|&v| {
                let key = (prio[v as usize], v);
                dyng.out[v as usize]
                    .iter()
                    .chain(dyng.inn[v as usize].iter())
                    .all(|a| (prio[a.other as usize], a.other) > key)
            })
            .collect();
        let mut selected: Vec<Vertex> = alive
            .iter()
            .zip(&is_min)
            .filter_map(|(&v, &keep)| keep.then_some(v))
            .collect();
        debug_assert!(!selected.is_empty());
        selected.sort_unstable_by_key(|&v| (prio[v as usize], v));
        for &v in &selected {
            dyng.round_sel[v as usize] = true;
        }

        // 2. Shortcuts for every selected vertex, in parallel against the
        // frozen round-start graph. `collect` preserves input order.
        let computed: Vec<(Vertex, Vec<Shortcut>)> = selected
            .par_iter()
            .map_init(WitnessScratch::default, |scratch, &v| {
                let scs = dyng.shortcuts_needed(scratch, v, hop_limit, cfg.witness_settle_cap);
                (v, scs)
            })
            .collect();

        // 3. Apply in (priority, id) order — sequential and deterministic.
        let mut dirty: Vec<Vertex> = Vec::new();
        for (v, shortcuts) in computed {
            // Record v's incident arcs in the hierarchy: out-arcs of v go up
            // (forward graph), in-arcs of v come down from above (stored at v
            // in the backward graph). Selected vertices are non-adjacent, so
            // these lists still equal the round-start snapshot.
            for a in &dyng.out[v as usize] {
                fwd_arcs.push((v, Arc::new(a.other, a.weight), a.middle));
            }
            for a in &dyng.inn[v as usize] {
                bwd_arcs.push((v, Arc::new(a.other, a.weight), a.middle));
            }
            for sc in &shortcuts {
                dyng.add_or_improve(sc, v);
            }
            num_shortcuts += shortcuts.len();
            phast_obs::prep::add_shortcuts_added(shortcuts.len() as u64);

            let neighbours = dyng.remove_vertex(v);
            for &x in &neighbours {
                state.contracted_neighbours[x as usize] += 1;
                let bumped = state.level[v as usize] + 1;
                if state.level[x as usize] < bumped {
                    state.level[x as usize] = bumped;
                }
            }
            dirty.extend(neighbours);
            rank[v as usize] = next_rank;
            next_rank += 1;
            dyng.round_sel[v as usize] = false;
        }

        // 4. Refresh priorities of surviving touched vertices in parallel.
        alive.retain(|&v| !dyng.contracted[v as usize]);
        hop_limit = hop_limit_for(cfg, dyng.avg_degree());
        dirty.sort_unstable();
        dirty.dedup();
        dirty.retain(|&x| !dyng.contracted[x as usize]);
        let updates: Vec<(Vertex, i64)> = dirty
            .par_iter()
            .map_init(WitnessScratch::default, |scratch, &x| {
                (x, priority(cfg, &dyng, &state, scratch, x, hop_limit))
            })
            .collect();
        for (x, p) in updates {
            prio[x as usize] = p;
        }
    }

    build_hierarchy(n, rank, state.level, num_shortcuts, fwd_arcs, bwd_arcs)
}

/// Classic sequential contraction with a lazily-updated priority heap.
fn contract_lazy(g: &Graph, cfg: &ContractionConfig) -> Hierarchy {
    let n = g.num_vertices();
    let mut dyng = DynGraph::new(g);
    let mut state = OrderState {
        level: vec![0; n],
        contracted_neighbours: vec![0; n],
    };

    // Initial priorities, computed in parallel (read-only on the graph).
    let mut hop_limit = hop_limit_for(cfg, dyng.avg_degree());
    let initial: Vec<(i64, Vertex)> = (0..n as Vertex)
        .into_par_iter()
        .map_init(WitnessScratch::default, |scratch, v| {
            (priority(cfg, &dyng, &state, scratch, v, hop_limit), v)
        })
        .collect();
    let mut heap: BinaryHeap<Reverse<(i64, Vertex)>> = initial
        .into_iter()
        .map(|(p, v)| Reverse((p, v)))
        .collect();

    // Hierarchy arcs collected as (tail, Arc, middle) triples.
    let mut fwd_arcs: Vec<(Vertex, Arc, Vertex)> = Vec::new();
    let mut bwd_arcs: Vec<(Vertex, Arc, Vertex)> = Vec::new();
    let mut rank = vec![0u32; n];
    let mut next_rank = 0u32;
    let mut num_shortcuts = 0usize;
    let mut scratch = WitnessScratch::default();

    while let Some(Reverse((prio, v))) = heap.pop() {
        if dyng.contracted[v as usize] {
            continue; // stale entry for an already contracted vertex
        }
        // Lazy update: recompute and reinsert unless still minimal.
        let fresh = priority(cfg, &dyng, &state, &mut scratch, v, hop_limit);
        if fresh > prio {
            if let Some(&Reverse((top, _))) = heap.peek() {
                if fresh > top {
                    heap.push(Reverse((fresh, v)));
                    continue;
                }
            }
        }

        // Contract v. Its remaining neighbours are all uncontracted, hence
        // ranked (and leveled) above v.
        let shortcuts =
            dyng.shortcuts_needed(&mut scratch, v, hop_limit, cfg.witness_settle_cap);
        for sc in &shortcuts {
            dyng.add_or_improve(sc, v);
        }
        num_shortcuts += shortcuts.len();
        phast_obs::prep::add_shortcuts_added(shortcuts.len() as u64);

        // Record v's incident arcs in the hierarchy: out-arcs of v go up
        // (forward graph), in-arcs of v come down from above (stored at v in
        // the backward graph).
        for a in &dyng.out[v as usize] {
            fwd_arcs.push((v, Arc::new(a.other, a.weight), a.middle));
        }
        for a in &dyng.inn[v as usize] {
            bwd_arcs.push((v, Arc::new(a.other, a.weight), a.middle));
        }

        let neighbours = dyng.remove_vertex(v);
        for &x in &neighbours {
            state.contracted_neighbours[x as usize] += 1;
            let bumped = state.level[v as usize] + 1;
            if state.level[x as usize] < bumped {
                state.level[x as usize] = bumped;
            }
        }
        rank[v as usize] = next_rank;
        next_rank += 1;

        hop_limit = hop_limit_for(cfg, dyng.avg_degree());

        // Re-evaluate the neighbours' priorities in parallel (the paper's
        // intra-contraction parallelism) and push the refreshed entries;
        // stale ones are skimmed off lazily.
        let updates: Vec<(i64, Vertex)> = neighbours
            .par_iter()
            .map_init(WitnessScratch::default, |scratch, &x| {
                (priority(cfg, &dyng, &state, scratch, x, hop_limit), x)
            })
            .collect();
        for (p, x) in updates {
            heap.push(Reverse((p, x)));
        }
    }

    build_hierarchy(n, rank, state.level, num_shortcuts, fwd_arcs, bwd_arcs)
}

/// Sorts the collected arc triples into CSR order and assembles the
/// [`Hierarchy`]. Middles ride along with their arcs.
fn build_hierarchy(
    n: usize,
    rank: Vec<u32>,
    level: Vec<u32>,
    num_shortcuts: usize,
    fwd_arcs: Vec<(Vertex, Arc, Vertex)>,
    bwd_arcs: Vec<(Vertex, Arc, Vertex)>,
) -> Hierarchy {
    let forward_up = Csr::from_arc_list(
        n,
        fwd_arcs.iter().map(|&(t, a, _)| (t, a)).collect(),
    );
    let backward_up = Csr::from_arc_list(
        n,
        bwd_arcs.iter().map(|&(t, a, _)| (t, a)).collect(),
    );
    let forward_middle = align_middles(&forward_up, &fwd_arcs);
    let backward_middle = align_middles(&backward_up, &bwd_arcs);

    Hierarchy {
        rank,
        level,
        forward_up,
        forward_middle,
        backward_up,
        backward_middle,
        num_shortcuts,
    }
}

/// Rebuilds the per-arc middle array in CSR order by replaying the counting
/// sort the CSR constructor performs (it is stable, so arcs of one tail keep
/// their relative order).
fn align_middles(csr: &Csr, arcs: &[(Vertex, Arc, Vertex)]) -> Vec<Vertex> {
    let n = csr.num_vertices();
    let mut cursor: Vec<u32> = csr.first()[..n].to_vec();
    let mut middles = vec![NO_MIDDLE; csr.num_arcs()];
    for &(tail, arc, middle) in arcs {
        let slot = cursor[tail as usize] as usize;
        cursor[tail as usize] += 1;
        debug_assert_eq!(csr.arcs()[slot], arc, "counting sort replay diverged");
        middles[slot] = middle;
    }
    middles
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::{GraphBuilder, INF};
    use proptest::prelude::*;

    /// Reference NSSP in `G+ = (V, A ∪ A+)` restricted to... nothing: a CH
    /// preserves all distances, so Dijkstra over `forward_up ∪ backward_up
    /// reversed` must equal Dijkstra over the original graph.
    fn ch_preserves_distances(g: &Graph, h: &Hierarchy) {
        let n = g.num_vertices();
        // Build G+ (original + shortcut arcs, all directions restored).
        let mut b = GraphBuilder::new(n);
        for (v, w, wt) in h.forward_up.iter_arcs() {
            b.add_arc(v, w, wt);
        }
        for (v, u, wt) in h.backward_up.iter_arcs() {
            b.add_arc(u, v, wt);
        }
        let gplus = b.build();
        for s in 0..n.min(8) as Vertex {
            let want = shortest_paths(g.forward(), s).dist;
            let got = shortest_paths(gplus.forward(), s).dist;
            assert_eq!(got, want, "G+ distances differ from G (source {s})");
        }
    }

    #[test]
    fn witness_search_breaks_on_bound_and_settle_cap() {
        // Directed path 0 -> 1 -> ... -> 9, unit weights.
        let mut b = GraphBuilder::new(10);
        for v in 0..9u32 {
            b.add_arc(v, v + 1, 1);
        }
        let g = b.build();
        let dyng = DynGraph::new(&g);
        let mut scratch = WitnessScratch::default();
        // Bound 3: exactly vertices 0..=3 are within the bound. The old
        // implementation kept popping (and counting) past the bound.
        let settled = dyng.witness_distances(&mut scratch, 0, NO_MIDDLE, 3, u32::MAX, usize::MAX);
        assert_eq!(settled, 4, "must stop at the distance bound");
        assert_eq!(scratch.dist.get(3), 3);
        assert_eq!(scratch.dist.get(4), Weight::MAX, "beyond-bound vertex labeled");
        // Settle cap 2: exactly two vertices settle.
        let settled = dyng.witness_distances(&mut scratch, 0, NO_MIDDLE, INF, u32::MAX, 2);
        assert_eq!(settled, 2, "must stop at the settle cap");
    }

    #[test]
    fn path_graph_contracts_cleanly() {
        let mut b = GraphBuilder::new(5);
        for v in 0..4u32 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let h = contract_graph(&g, &ContractionConfig::default());
        h.validate().unwrap();
        ch_preserves_distances(&g, &h);
        assert_eq!(h.num_vertices(), 5);
    }

    #[test]
    fn clique_needs_no_shortcuts() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    b.add_arc(u, v, 1);
                }
            }
        }
        let g = b.build();
        let h = contract_graph(&g, &ContractionConfig::default());
        // Every two-arc path through a contracted vertex has a one-arc
        // witness, so no shortcuts are necessary.
        assert_eq!(h.num_shortcuts, 0);
        ch_preserves_distances(&g, &h);
    }

    #[test]
    fn star_graph_shortcuts_through_center() {
        // Center 0, leaves 1..=4; all paths go through 0. Contracting 0
        // first would add many shortcuts, so the order should contract the
        // leaves first and add none.
        let mut b = GraphBuilder::new(5);
        for leaf in 1..5u32 {
            b.add_edge(0, leaf, leaf);
        }
        let g = b.build();
        let h = contract_graph(&g, &ContractionConfig::default());
        h.validate().unwrap();
        ch_preserves_distances(&g, &h);
        assert_eq!(h.rank[0], 4, "hub should be contracted last");
    }

    #[test]
    fn road_network_hierarchy_is_shallow() {
        let net = RoadNetworkConfig::new(30, 30, 5, Metric::TravelTime).build();
        let h = contract_graph(&net.graph, &ContractionConfig::default());
        h.validate().unwrap();
        ch_preserves_distances(&net.graph, &h);
        let n = net.graph.num_vertices();
        assert!(
            h.num_levels() < n / 4,
            "hierarchy depth {} not shallow for n = {n}",
            h.num_levels()
        );
        // Level 0 holds an independent set that is a large fraction of V.
        let hist = h.level_histogram();
        assert!(hist[0] * 4 >= n, "level 0 has only {} of {n}", hist[0]);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        for cfg in [ContractionConfig::default(), ContractionConfig::sequential()] {
            let h0 = contract_graph(&GraphBuilder::new(0).build(), &cfg);
            assert_eq!(h0.num_vertices(), 0);
            assert_eq!(h0.num_levels(), 0);
            let h1 = contract_graph(&GraphBuilder::new(1).build(), &cfg);
            assert_eq!(h1.num_vertices(), 1);
            assert_eq!(h1.level_histogram(), vec![1]);
        }
    }

    #[test]
    fn disconnected_graph() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1).add_edge(2, 3, 1).add_edge(4, 5, 1);
        let g = b.build();
        let h = contract_graph(&g, &ContractionConfig::default());
        h.validate().unwrap();
        ch_preserves_distances(&g, &h);
    }

    #[test]
    fn zero_weight_arcs() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0).add_edge(1, 2, 0).add_edge(2, 3, 1);
        let g = b.build();
        let h = contract_graph(&g, &ContractionConfig::default());
        ch_preserves_distances(&g, &h);
    }

    #[test]
    fn priority_presets_all_produce_correct_hierarchies() {
        let net = RoadNetworkConfig::new(14, 14, 77, Metric::TravelTime).build();
        let g = &net.graph;
        for (name, cfg) in [
            ("paper", ContractionConfig::paper()),
            ("edge-difference", ContractionConfig::edge_difference_only()),
            ("flat-levels", ContractionConfig::flat_levels()),
            ("sequential", ContractionConfig::sequential()),
        ] {
            let h = contract_graph(g, &cfg);
            h.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            ch_preserves_distances(g, &h);
        }
    }

    #[test]
    fn level_coefficient_flattens_the_hierarchy() {
        let net = RoadNetworkConfig::new(20, 20, 78, Metric::TravelTime).build();
        let g = &net.graph;
        let eager = contract_graph(g, &ContractionConfig::edge_difference_only());
        let flat = contract_graph(g, &ContractionConfig::flat_levels());
        assert!(
            flat.num_levels() <= eager.num_levels() + 2,
            "level-averse ordering should not deepen: {} vs {}",
            flat.num_levels(),
            eager.num_levels()
        );
    }

    #[test]
    fn parallel_rounds_is_bit_identical_across_thread_counts() {
        let net = RoadNetworkConfig::new(16, 16, 42, Metric::TravelTime).build();
        let base = contract_graph(
            &net.graph,
            &ContractionConfig {
                threads: 1,
                ..ContractionConfig::default()
            },
        );
        for threads in [2usize, 4, 7] {
            let h = contract_graph(
                &net.graph,
                &ContractionConfig {
                    threads,
                    ..ContractionConfig::default()
                },
            );
            assert_eq!(h, base, "hierarchy differs at threads={threads}");
        }
    }

    #[test]
    fn both_contractors_preserve_distances_on_random_graphs() {
        for seed in 0..4u64 {
            let g = strongly_connected_gnm(40, 80, 30, seed);
            let par = contract_graph(&g, &ContractionConfig::default());
            let seq = contract_graph(&g, &ContractionConfig::sequential());
            par.validate().unwrap();
            seq.validate().unwrap();
            ch_preserves_distances(&g, &par);
            ch_preserves_distances(&g, &seq);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_graphs_preserve_distances(
            n in 2usize..30,
            extra in 0usize..80,
            seed in 0u64..1000,
            max_w in 1u32..40,
        ) {
            let g = strongly_connected_gnm(n, extra, max_w, seed);
            let h = contract_graph(&g, &ContractionConfig::default());
            h.validate().unwrap();
            // Spot-check several sources against plain Dijkstra.
            let mut bb = GraphBuilder::new(n);
            for (v, w, wt) in h.forward_up.iter_arcs() { bb.add_arc(v, w, wt); }
            for (v, u, wt) in h.backward_up.iter_arcs() { bb.add_arc(u, v, wt); }
            let gplus = bb.build();
            for s in [0u32, (n as u32 / 2).min(n as u32 - 1)] {
                let want = shortest_paths(g.forward(), s).dist;
                let got = shortest_paths(gplus.forward(), s).dist;
                prop_assert_eq!(&got, &want);
                prop_assert!(got.iter().all(|&d| d < INF));
            }
        }
    }
}
