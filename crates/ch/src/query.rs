//! CH searches: the bidirectional point-to-point query and the full
//! (target-independent) forward upward search PHAST's first phase runs.

use crate::hierarchy::Hierarchy;
use phast_graph::{Vertex, Weight, INF};
use phast_pq::{DecreaseKeyQueue, IndexedBinaryHeap};

/// The forward CH search of PHAST's first phase: Dijkstra from `s` in `G↑`
/// run until the queue is empty ("even with this loose stopping criterion,
/// the upward search only visits about 500 vertices on average").
///
/// Reusable: internal arrays are `n`-sized but reset in `O(touched)`.
pub struct UpwardSearch<'h> {
    h: &'h Hierarchy,
    dist: Vec<Weight>,
    touched: Vec<Vertex>,
    queue: IndexedBinaryHeap,
}

impl<'h> UpwardSearch<'h> {
    /// Creates a search over the hierarchy.
    pub fn new(h: &'h Hierarchy) -> Self {
        let n = h.num_vertices();
        Self {
            h,
            dist: vec![INF; n],
            touched: Vec::new(),
            queue: IndexedBinaryHeap::new(n),
        }
    }

    /// Runs the search and returns the *search space*: every visited vertex
    /// with its (upper bound) distance label, in the order vertices were
    /// settled. This is the ~2 KB payload GPHAST copies to the device.
    pub fn run(&mut self, s: Vertex) -> Vec<(Vertex, Weight)> {
        let mut space = Vec::new();
        self.run_into(s, &mut space);
        space
    }

    /// Like [`Self::run`], reusing the caller's buffer.
    pub fn run_into(&mut self, s: Vertex, space: &mut Vec<(Vertex, Weight)>) {
        space.clear();
        for &v in &self.touched {
            self.dist[v as usize] = INF;
        }
        self.touched.clear();
        self.queue.clear();

        self.dist[s as usize] = 0;
        self.touched.push(s);
        self.queue.insert(s, 0);
        while let Some((v, dv)) = self.queue.pop_min() {
            space.push((v, dv));
            for a in self.h.forward_up.out(v) {
                let cand = dv + a.weight;
                if cand < self.dist[a.head as usize] {
                    if self.dist[a.head as usize] == INF {
                        self.touched.push(a.head);
                        self.queue.insert(a.head, cand);
                    } else {
                        self.queue.decrease_key(a.head, cand);
                    }
                    self.dist[a.head as usize] = cand;
                }
            }
        }
    }
}

/// The bidirectional CH point-to-point query (Section II-B): a forward
/// upward search from `s` meets a backward upward search from `t`; the
/// maximum-rank vertex of the shortest path minimizes
/// `µ = d_s(u) + d_t(u)`, and each side stops once its queue minimum
/// reaches `µ`.
pub struct ChQuery<'h> {
    h: &'h Hierarchy,
    df: Vec<Weight>,
    db: Vec<Weight>,
    pf: Vec<Vertex>,
    pb: Vec<Vertex>,
    touched_f: Vec<Vertex>,
    touched_b: Vec<Vertex>,
    stall_on_demand: bool,
}

/// Statistics of one query, for the "fewer than 400 vertices visited"
/// claims of Section II-B.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Vertices settled by both searches together.
    pub settled: usize,
    /// Vertices whose relaxation was skipped by stall-on-demand.
    pub stalled: usize,
    /// The meeting vertex, if a path was found.
    pub meeting: Option<Vertex>,
}

impl<'h> ChQuery<'h> {
    const NO_PARENT: Vertex = Vertex::MAX;

    /// Creates a query engine over the hierarchy.
    pub fn new(h: &'h Hierarchy) -> Self {
        let n = h.num_vertices();
        Self {
            h,
            df: vec![INF; n],
            db: vec![INF; n],
            pf: vec![Self::NO_PARENT; n],
            pb: vec![Self::NO_PARENT; n],
            touched_f: Vec::new(),
            touched_b: Vec::new(),
            stall_on_demand: false,
        }
    }

    /// Enables *stall-on-demand* (Geisberger et al. \[8\]): before relaxing
    /// a settled vertex `v`, check whether an arc arriving from above
    /// proves `v`'s label suboptimal (`d(u) + w(u, v) < d(v)` for some
    /// higher-ranked `u`); if so, skip the relaxation — such a label can
    /// never contribute to a shortest path. Cuts the search space further
    /// at the cost of one extra arc scan per settled vertex.
    pub fn stall_on_demand(mut self, enable: bool) -> Self {
        self.stall_on_demand = enable;
        self
    }

    fn reset(&mut self) {
        for &v in &self.touched_f {
            self.df[v as usize] = INF;
            self.pf[v as usize] = Self::NO_PARENT;
        }
        for &v in &self.touched_b {
            self.db[v as usize] = INF;
            self.pb[v as usize] = Self::NO_PARENT;
        }
        self.touched_f.clear();
        self.touched_b.clear();
    }

    /// Shortest `s`-`t` distance, or `None` if `t` is unreachable.
    pub fn query(&mut self, s: Vertex, t: Vertex) -> Option<Weight> {
        self.query_with_stats(s, t).0
    }

    /// [`Self::query`] plus search statistics.
    pub fn query_with_stats(&mut self, s: Vertex, t: Vertex) -> (Option<Weight>, QueryStats) {
        self.reset();
        let n = self.h.num_vertices();
        let mut qf = IndexedBinaryHeap::new(n);
        let mut qb = IndexedBinaryHeap::new(n);
        self.df[s as usize] = 0;
        self.db[t as usize] = 0;
        self.touched_f.push(s);
        self.touched_b.push(t);
        qf.insert(s, 0);
        qb.insert(t, 0);
        let mut mu = if s == t { 0 } else { INF };
        let mut meeting = (s == t).then_some(s);
        let mut stats = QueryStats::default();

        // Alternate sides; each side stops when its minimum reaches µ.
        loop {
            let fgo = qf.peek_min().is_some_and(|(_, k)| k < mu);
            let bgo = qb.peek_min().is_some_and(|(_, k)| k < mu);
            if !fgo && !bgo {
                break;
            }
            if fgo {
                let (v, dv) = qf.pop_min().expect("peeked");
                stats.settled += 1;
                if self.db[v as usize] < INF && dv + self.db[v as usize] < mu {
                    mu = dv + self.db[v as usize];
                    meeting = Some(v);
                }
                // Stall-on-demand: a shorter path into v from above proves
                // this label cannot extend to a shortest path.
                if self.stall_on_demand
                    && self
                        .h
                        .backward_up
                        .out(v)
                        .iter()
                        .any(|a| self.df[a.head as usize].saturating_add(a.weight) < dv)
                {
                    stats.stalled += 1;
                    continue;
                }
                for a in self.h.forward_up.out(v) {
                    let cand = dv + a.weight;
                    let w = a.head as usize;
                    if cand < self.df[w] {
                        if self.df[w] == INF {
                            self.touched_f.push(a.head);
                            qf.insert(a.head, cand);
                        } else {
                            qf.decrease_key(a.head, cand);
                        }
                        self.df[w] = cand;
                        self.pf[w] = v;
                    }
                }
            }
            if bgo {
                let (v, dv) = qb.pop_min().expect("peeked");
                stats.settled += 1;
                if self.df[v as usize] < INF && dv + self.df[v as usize] < mu {
                    mu = dv + self.df[v as usize];
                    meeting = Some(v);
                }
                if self.stall_on_demand
                    && self
                        .h
                        .forward_up
                        .out(v)
                        .iter()
                        .any(|a| self.db[a.head as usize].saturating_add(a.weight) < dv)
                {
                    stats.stalled += 1;
                    continue;
                }
                for a in self.h.backward_up.out(v) {
                    let cand = dv + a.weight;
                    let w = a.head as usize;
                    if cand < self.db[w] {
                        if self.db[w] == INF {
                            self.touched_b.push(a.head);
                            qb.insert(a.head, cand);
                        } else {
                            qb.decrease_key(a.head, cand);
                        }
                        self.db[w] = cand;
                        self.pb[w] = v;
                    }
                }
            }
        }
        stats.meeting = meeting;
        ((mu < INF).then_some(mu), stats)
    }

    /// Shortest path as original-graph vertices (inclusive of both ends),
    /// with shortcuts fully unpacked.
    pub fn query_path(&mut self, s: Vertex, t: Vertex) -> Option<(Weight, Vec<Vertex>)> {
        let (dist, stats) = self.query_with_stats(s, t);
        let dist = dist?;
        let u = stats.meeting.expect("distance implies meeting vertex");

        // Upward chain s -> ... -> u in G↑ (vertices from u back to s).
        let mut up_chain = vec![u];
        let mut x = u;
        while self.pf[x as usize] != Self::NO_PARENT {
            x = self.pf[x as usize];
            up_chain.push(x);
        }
        up_chain.reverse(); // s ... u

        // Downward chain u -> ... -> t (each backward-search parent step
        // (x -> y) corresponds to original arc y -> x).
        let mut down_chain = vec![u];
        let mut x = u;
        while self.pb[x as usize] != Self::NO_PARENT {
            x = self.pb[x as usize];
            down_chain.push(x);
        }
        // down_chain: u ... t

        let mut path = vec![s];
        for pair in up_chain.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let w = self.df[b as usize] - self.df[a as usize];
            self.h.unpack_arc(a, b, w, &mut path);
        }
        for pair in down_chain.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            // db decreases along the chain towards t (db[a] = db[b] + w for
            // the original downward arc a -> b).
            let w = self.db[a as usize] - self.db[b as usize];
            self.h.unpack_arc(a, b, w, &mut path);
        }
        Some((dist, path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{contract_graph, ContractionConfig};
    use phast_dijkstra::dijkstra::shortest_paths;
    use phast_graph::gen::random::strongly_connected_gnm;
    use phast_graph::gen::{Metric, RoadNetworkConfig};
    use phast_graph::{Graph, GraphBuilder};
    use proptest::prelude::*;

    fn check_all_pairs(g: &Graph) {
        let h = contract_graph(g, &ContractionConfig::default());
        let mut q = ChQuery::new(&h);
        let n = g.num_vertices();
        for s in 0..n as Vertex {
            let want = shortest_paths(g.forward(), s).dist;
            for t in 0..n as Vertex {
                let got = q.query(s, t);
                let expect = (want[t as usize] < INF).then_some(want[t as usize]);
                assert_eq!(got, expect, "query {s}->{t}");
            }
        }
    }

    #[test]
    fn all_pairs_on_small_road_network() {
        let net = RoadNetworkConfig::new(7, 7, 2, Metric::TravelTime).build();
        check_all_pairs(&net.graph);
    }

    #[test]
    fn all_pairs_on_directed_cycle() {
        let mut b = GraphBuilder::new(6);
        for v in 0..6u32 {
            b.add_arc(v, (v + 1) % 6, v + 1);
        }
        check_all_pairs(&b.build());
    }

    #[test]
    fn unreachable_targets() {
        let mut b = GraphBuilder::new(4);
        b.add_arc(0, 1, 1).add_arc(2, 3, 1);
        let g = b.build();
        let h = contract_graph(&g, &ContractionConfig::default());
        let mut q = ChQuery::new(&h);
        assert_eq!(q.query(0, 1), Some(1));
        assert_eq!(q.query(0, 3), None);
        assert_eq!(q.query(1, 0), None);
    }

    #[test]
    fn upward_search_space_is_small_on_road_networks() {
        let net = RoadNetworkConfig::new(40, 40, 3, Metric::TravelTime).build();
        let h = contract_graph(&net.graph, &ContractionConfig::default());
        let mut up = UpwardSearch::new(&h);
        let n = net.graph.num_vertices();
        let mut total = 0usize;
        for s in (0..n as Vertex).step_by(97) {
            total += up.run(s).len();
        }
        let sources = (n as f64 / 97.0).ceil() as usize;
        let avg = total as f64 / sources as f64;
        assert!(
            avg < n as f64 / 10.0,
            "upward search spaces too large: avg {avg} of {n}"
        );
    }

    #[test]
    fn upward_labels_are_upper_bounds_and_exact_at_top(){
        let net = RoadNetworkConfig::new(12, 12, 9, Metric::TravelTime).build();
        let h = contract_graph(&net.graph, &ContractionConfig::default());
        let mut up = UpwardSearch::new(&h);
        let s = 0;
        let space = up.run(s);
        let exact = shortest_paths(net.graph.forward(), s).dist;
        for &(v, d) in &space {
            assert!(d >= exact[v as usize], "upward label below true distance");
        }
        // The source label is exact.
        assert_eq!(space[0], (s, 0));
    }

    #[test]
    fn paths_unpack_to_original_arcs() {
        let net = RoadNetworkConfig::new(10, 10, 4, Metric::TravelTime).build();
        let g = &net.graph;
        let h = contract_graph(g, &ContractionConfig::default());
        let mut q = ChQuery::new(&h);
        let n = g.num_vertices() as Vertex;
        for (s, t) in [(0, n - 1), (3, n / 2), (n - 1, 0), (5, 5)] {
            let (dist, path) = q.query_path(s, t).expect("connected");
            assert_eq!(path.first(), Some(&s));
            assert_eq!(path.last(), Some(&t));
            // Path must consist of original arcs whose weights sum to dist.
            let mut sum = 0;
            for w in path.windows(2) {
                let arc = g
                    .out(w[0])
                    .iter()
                    .filter(|a| a.head == w[1])
                    .map(|a| a.weight)
                    .min()
                    .unwrap_or_else(|| panic!("no original arc {}->{}", w[0], w[1]));
                sum += arc;
            }
            assert_eq!(sum, dist);
        }
    }

    #[test]
    fn stall_on_demand_preserves_distances_and_prunes() {
        let net = RoadNetworkConfig::new(25, 25, 8, Metric::TravelTime).build();
        let h = contract_graph(&net.graph, &ContractionConfig::default());
        let mut plain = ChQuery::new(&h);
        let mut stalling = ChQuery::new(&h).stall_on_demand(true);
        let n = net.graph.num_vertices() as Vertex;
        let mut settled_plain = 0usize;
        let mut settled_stall = 0usize;
        let mut total_stalled = 0usize;
        for i in 0..60u32 {
            let (s, t) = (i * 131 % n, i * 197 % n);
            let (dp, sp) = plain.query_with_stats(s, t);
            let (ds, ss) = stalling.query_with_stats(s, t);
            assert_eq!(dp, ds, "{s} -> {t}");
            settled_plain += sp.settled;
            settled_stall += ss.settled;
            total_stalled += ss.stalled;
        }
        assert!(total_stalled > 0, "stalling never triggered");
        assert!(
            settled_stall <= settled_plain,
            "stalling must not enlarge the search"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn stalled_queries_match_dijkstra(
            n in 2usize..20,
            extra in 0usize..50,
            seed in 0u64..200,
        ) {
            let g = strongly_connected_gnm(n, extra, 30, seed);
            let h = contract_graph(&g, &ContractionConfig::default());
            let mut q = ChQuery::new(&h).stall_on_demand(true);
            for s in 0..n.min(4) as Vertex {
                let want = shortest_paths(g.forward(), s).dist;
                for t in 0..n as Vertex {
                    prop_assert_eq!(q.query(s, t), Some(want[t as usize]));
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_queries_match_dijkstra(
            n in 2usize..25,
            extra in 0usize..60,
            seed in 0u64..500,
        ) {
            let g = strongly_connected_gnm(n, extra, 30, seed);
            let h = contract_graph(&g, &ContractionConfig::default());
            let mut q = ChQuery::new(&h);
            for s in 0..n.min(5) as Vertex {
                let want = shortest_paths(g.forward(), s).dist;
                for t in 0..n as Vertex {
                    prop_assert_eq!(q.query(s, t), Some(want[t as usize]));
                }
            }
        }

        #[test]
        fn random_paths_are_valid(seed in 0u64..200) {
            let g = strongly_connected_gnm(15, 30, 20, seed);
            let h = contract_graph(&g, &ContractionConfig::default());
            let mut q = ChQuery::new(&h);
            let want = shortest_paths(g.forward(), 0).dist;
            for t in 0..15u32 {
                let (dist, path) = q.query_path(0, t).expect("strongly connected");
                prop_assert_eq!(dist, want[t as usize]);
                let mut sum = 0;
                for w in path.windows(2) {
                    let arc = g.out(w[0]).iter().filter(|a| a.head == w[1])
                        .map(|a| a.weight).min();
                    prop_assert!(arc.is_some(), "missing arc {}->{}", w[0], w[1]);
                    sum += arc.unwrap();
                }
                prop_assert_eq!(sum, dist);
            }
        }
    }
}
