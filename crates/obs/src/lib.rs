//! Observability for PHAST: counters, phase timers, and JSON reports.
//!
//! The paper's argument is quantitative — its tables report settled
//! vertices, relaxed arcs, per-level work and per-phase times — so every
//! engine in this workspace doubles as a measurement instrument. This crate
//! is the shared substrate:
//!
//! * [`Counters`] — the event counts the paper's tables are built from.
//!   Hot-path counts (per-arc, per-mark, per-block events) are compiled in
//!   only under the `obs-counters` cargo feature; without it every gated
//!   increment is an `#[inline(always)]` empty function, so the sweep and
//!   the witness searches are byte-identical to the uninstrumented code.
//!   The *settled-vertices* count and the phase timers are always on: they
//!   cost O(1) per query and pre-date this crate.
//! * [`QueryStats`] — per-query counters plus upward/sweep phase times.
//! * [`Report`] — named metrics serializable to JSON (see the module docs
//!   of [`report`]) and convertible to the bench crate's text tables.
//! * [`prep`] — process-global atomic counters for CH preprocessing, which
//!   contracts vertices from parallel workers.
//!
//! Enable the feature through the umbrella crate or any engine crate
//! (each forwards it here): `cargo test --features obs-counters`.

use std::time::{Duration, Instant};

pub mod report;

pub use report::{MetricValue, Report};

/// `true` when this build counts hot-path events (`obs-counters` feature).
pub const COUNTERS_ENABLED: bool = cfg!(feature = "obs-counters");

/// Event counts of one query (or one preprocessing run).
///
/// All fields are plain totals; which phase contributes to which field is
/// documented per engine (see `DESIGN.md`, "Observability"). A field that
/// an engine cannot observe stays `0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Counters {
    /// Vertices settled (popped with a final label) by upward CH searches.
    /// Always counted, even without `obs-counters`.
    pub upward_settled: u64,
    /// Arcs scanned by upward CH searches (gated).
    pub upward_relaxed: u64,
    /// Arcs relaxed by the linear sweep over `G↓` (gated). The sweep is
    /// oblivious — it touches every downward arc once per tree — so batched
    /// and parallel engines report `|A↓| · k` without instrumenting the
    /// SIMD kernels.
    pub sweep_arcs_relaxed: u64,
    /// Levels the sweep phase processed (gated).
    pub levels_swept: u64,
    /// Blocks executed by intra-level parallel sweeps (gated); sequential
    /// sweeps count one block per level.
    pub blocks_executed: u64,
    /// Visited marks cleared by the sweep phase — equivalently, the size of
    /// the upward search space whose implicit initialization the sweep
    /// undoes (gated).
    pub marks_cleared: u64,
    /// Shortcut arcs added by CH contraction (gated).
    pub shortcuts_added: u64,
    /// Witness searches run by CH contraction (gated).
    pub witness_searches: u64,
    /// Restricted vertices scanned by RPHAST sweeps — one per selected
    /// vertex per restricted sweep, regardless of lane count (gated).
    pub restricted_scans: u64,
}

macro_rules! gated_adders {
    ($($(#[$doc:meta])* $name:ident => $field:ident),* $(,)?) => {$(
        $(#[$doc])*
        ///
        /// Compiled to an empty inline function without `obs-counters`.
        #[inline(always)]
        #[allow(unused_variables)]
        pub fn $name(&mut self, n: u64) {
            #[cfg(feature = "obs-counters")]
            {
                self.$field += n;
            }
        }
    )*};
}

impl Counters {
    /// Adds to the always-on settled-vertices counter.
    #[inline(always)]
    pub fn add_upward_settled(&mut self, n: u64) {
        self.upward_settled += n;
    }

    gated_adders! {
        /// Adds upward-search arc scans.
        add_upward_relaxed => upward_relaxed,
        /// Adds sweep arc relaxations.
        add_sweep_arcs => sweep_arcs_relaxed,
        /// Adds swept levels.
        add_levels_swept => levels_swept,
        /// Adds executed sweep blocks.
        add_blocks_executed => blocks_executed,
        /// Adds cleared visited marks.
        add_marks_cleared => marks_cleared,
        /// Adds contraction shortcuts.
        add_shortcuts_added => shortcuts_added,
        /// Adds contraction witness searches.
        add_witness_searches => witness_searches,
        /// Adds restricted-sweep vertex scans.
        add_restricted_scans => restricted_scans,
    }

    /// Field-wise sum (aggregating per-query stats into a run total).
    pub fn merge(&mut self, other: &Counters) {
        self.upward_settled += other.upward_settled;
        self.upward_relaxed += other.upward_relaxed;
        self.sweep_arcs_relaxed += other.sweep_arcs_relaxed;
        self.levels_swept += other.levels_swept;
        self.blocks_executed += other.blocks_executed;
        self.marks_cleared += other.marks_cleared;
        self.shortcuts_added += other.shortcuts_added;
        self.witness_searches += other.witness_searches;
        self.restricted_scans += other.restricted_scans;
    }

    /// Appends every counter to `report` under its field name.
    pub fn fill_report(&self, report: &mut Report) {
        report.push_count("upward_settled", self.upward_settled);
        report.push_count("upward_relaxed", self.upward_relaxed);
        report.push_count("sweep_arcs_relaxed", self.sweep_arcs_relaxed);
        report.push_count("levels_swept", self.levels_swept);
        report.push_count("blocks_executed", self.blocks_executed);
        report.push_count("marks_cleared", self.marks_cleared);
        report.push_count("shortcuts_added", self.shortcuts_added);
        report.push_count("witness_searches", self.witness_searches);
        report.push_count("restricted_scans", self.restricted_scans);
    }
}

/// Statistics of one engine query: counters plus monotonic phase times.
///
/// The timers are always on — two `Instant` reads per phase, negligible
/// next to a sweep over the whole graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueryStats {
    /// Event counts (see [`Counters`] for per-field gating).
    pub counters: Counters,
    /// Wall time of the upward CH search phase.
    pub upward_time: Duration,
    /// Wall time of the sweep phase.
    pub sweep_time: Duration,
}

impl QueryStats {
    /// Zeroes everything (engines call this at the start of each query).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Builds a [`Report`] titled `title` with every counter and both
    /// phase times.
    pub fn report(&self, title: impl Into<String>) -> Report {
        let mut r = Report::new(title);
        self.counters.fill_report(&mut r);
        r.push_time("upward_time", self.upward_time);
        r.push_time("sweep_time", self.sweep_time);
        r
    }
}

/// A monotonic phase timer ([`Instant`]-based).
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimer {
    start: Instant,
}

impl PhaseTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time since [`Self::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Process-global counters for CH preprocessing.
///
/// Contraction evaluates priorities and witness searches from parallel
/// rayon workers, so these counters are atomics rather than fields of a
/// scratch struct. [`contract_graph`]-style entry points call
/// [`prep::reset`] on entry; read the totals with [`prep::counters`]
/// afterwards. Concurrent preprocessing runs in one process would share
/// them — acceptable for a measurement aid.
///
/// [`contract_graph`]: https://docs.rs/phast-ch
pub mod prep {
    use std::sync::atomic::{AtomicU64, Ordering};

    static WITNESS_SEARCHES: AtomicU64 = AtomicU64::new(0);
    static SHORTCUTS_ADDED: AtomicU64 = AtomicU64::new(0);

    /// Zeroes the preprocessing counters.
    pub fn reset() {
        WITNESS_SEARCHES.store(0, Ordering::Relaxed);
        SHORTCUTS_ADDED.store(0, Ordering::Relaxed);
    }

    /// Counts witness searches (gated; inline no-op without
    /// `obs-counters`).
    #[inline(always)]
    #[allow(unused_variables)]
    pub fn add_witness_searches(n: u64) {
        #[cfg(feature = "obs-counters")]
        WITNESS_SEARCHES.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts added shortcuts (gated; inline no-op without
    /// `obs-counters`).
    #[inline(always)]
    #[allow(unused_variables)]
    pub fn add_shortcuts_added(n: u64) {
        #[cfg(feature = "obs-counters")]
        SHORTCUTS_ADDED.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of the preprocessing counters (other fields zero).
    pub fn counters() -> crate::Counters {
        crate::Counters {
            witness_searches: WITNESS_SEARCHES.load(Ordering::Relaxed),
            shortcuts_added: SHORTCUTS_ADDED.load(Ordering::Relaxed),
            ..crate::Counters::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_default_to_zero() {
        assert_eq!(Counters::default(), Counters { ..Default::default() });
        let c = Counters::default();
        assert_eq!(c.upward_settled, 0);
        assert_eq!(c.witness_searches, 0);
    }

    #[test]
    fn settled_counter_is_always_on() {
        let mut c = Counters::default();
        c.add_upward_settled(7);
        c.add_upward_settled(3);
        assert_eq!(c.upward_settled, 10);
    }

    #[test]
    fn gated_counters_match_the_feature() {
        let mut c = Counters::default();
        c.add_sweep_arcs(42);
        c.add_witness_searches(1);
        if COUNTERS_ENABLED {
            assert_eq!(c.sweep_arcs_relaxed, 42);
            assert_eq!(c.witness_searches, 1);
        } else {
            assert_eq!(c.sweep_arcs_relaxed, 0);
            assert_eq!(c.witness_searches, 0);
        }
    }

    #[test]
    fn merge_sums_fieldwise() {
        let mut a = Counters {
            upward_settled: 1,
            levels_swept: 2,
            ..Default::default()
        };
        let b = Counters {
            upward_settled: 10,
            shortcuts_added: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.upward_settled, 11);
        assert_eq!(a.levels_swept, 2);
        assert_eq!(a.shortcuts_added, 5);
    }

    #[test]
    fn query_stats_reset_and_report() {
        let mut s = QueryStats::default();
        s.counters.add_upward_settled(9);
        s.upward_time = Duration::from_micros(5);
        let r = s.report("q");
        assert_eq!(r.title(), "q");
        assert_eq!(r.get("upward_settled"), Some(&MetricValue::Count(9)));
        assert_eq!(
            r.get("upward_time"),
            Some(&MetricValue::Time(Duration::from_micros(5)))
        );
        s.reset();
        assert_eq!(s, QueryStats::default());
    }

    #[test]
    fn prep_counters_reset_and_snapshot() {
        prep::reset();
        prep::add_witness_searches(4);
        prep::add_shortcuts_added(2);
        let c = prep::counters();
        if COUNTERS_ENABLED {
            assert_eq!(c.witness_searches, 4);
            assert_eq!(c.shortcuts_added, 2);
        } else {
            assert_eq!(c.witness_searches, 0);
            assert_eq!(c.shortcuts_added, 0);
        }
        prep::reset();
        assert_eq!(prep::counters(), Counters::default());
    }

    #[test]
    fn phase_timer_is_monotonic() {
        let t = PhaseTimer::start();
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
    }
}
