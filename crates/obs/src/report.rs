//! Named metrics with a stable JSON encoding.
//!
//! A [`Report`] is an ordered list of `(name, value)` metrics under a
//! title. Its JSON schema (via `serde_json::to_string`) is:
//!
//! ```json
//! {
//!   "title": "phast tree query",
//!   "counters_enabled": true,
//!   "metrics": {
//!     "upward_settled": 412,
//!     "sweep_arcs_relaxed": 1903442,
//!     "upward_time": 184250,
//!     "lane_efficiency": 0.97,
//!     "note": "free-form text"
//!   }
//! }
//! ```
//!
//! Counts serialize as integers, durations as **integer nanoseconds**,
//! ratios as floats, and text as strings. `counters_enabled` records
//! whether the producing build had the `obs-counters` feature, so a reader
//! can tell a genuine zero from a disabled counter.

use std::time::Duration;

/// One metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// An event count.
    Count(u64),
    /// A wall-clock duration (serialized as nanoseconds).
    Time(Duration),
    /// A dimensionless ratio (efficiency, speedup, occupancy).
    Ratio(f64),
    /// Free-form text.
    Text(String),
}

impl std::fmt::Display for MetricValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricValue::Count(c) => write!(f, "{c}"),
            MetricValue::Time(d) => write!(f, "{d:?}"),
            MetricValue::Ratio(r) => write!(f, "{r:.3}"),
            MetricValue::Text(s) => f.write_str(s),
        }
    }
}

/// An ordered collection of named metrics with a title.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    title: String,
    entries: Vec<(String, MetricValue)>,
}

impl Report {
    /// An empty report titled `title`.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            entries: Vec::new(),
        }
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The metrics, in insertion order.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Appends a metric.
    pub fn push(&mut self, name: impl Into<String>, value: MetricValue) -> &mut Self {
        self.entries.push((name.into(), value));
        self
    }

    /// Appends a count.
    pub fn push_count(&mut self, name: impl Into<String>, n: u64) -> &mut Self {
        self.push(name, MetricValue::Count(n))
    }

    /// Appends a duration.
    pub fn push_time(&mut self, name: impl Into<String>, d: Duration) -> &mut Self {
        self.push(name, MetricValue::Time(d))
    }

    /// Appends a ratio.
    pub fn push_ratio(&mut self, name: impl Into<String>, r: f64) -> &mut Self {
        self.push(name, MetricValue::Ratio(r))
    }

    /// Appends text.
    pub fn push_text(
        &mut self,
        name: impl Into<String>,
        text: impl Into<String>,
    ) -> &mut Self {
        self.push(name, MetricValue::Text(text.into()))
    }

    /// Merges every metric of `other` into `self` under `prefix.name`
    /// (insertion order preserved), so per-engine reports can be folded
    /// into one artifact — the JSON side of the bench harness's
    /// `BENCH_*.json` schema — without name collisions.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Report) -> &mut Self {
        for (name, value) in other.entries() {
            self.push(format!("{prefix}.{name}"), value.clone());
        }
        self
    }
}

fn sat_i64(n: u64) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

impl serde::Serialize for Report {
    fn to_value(&self) -> serde::Value {
        let metrics: Vec<(String, serde::Value)> = self
            .entries
            .iter()
            .map(|(name, v)| {
                let value = match v {
                    MetricValue::Count(c) => serde::Value::Int(sat_i64(*c)),
                    MetricValue::Time(d) => {
                        serde::Value::Int(sat_i64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)))
                    }
                    MetricValue::Ratio(r) => serde::Value::Float(*r),
                    MetricValue::Text(s) => serde::Value::String(s.clone()),
                };
                (name.clone(), value)
            })
            .collect();
        serde::Value::Object(vec![
            ("title".to_string(), serde::Value::String(self.title.clone())),
            (
                "counters_enabled".to_string(),
                serde::Value::Bool(crate::COUNTERS_ENABLED),
            ),
            ("metrics".to_string(), serde::Value::Object(metrics)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_builds_in_order() {
        let mut r = Report::new("t");
        r.push_count("a", 1).push_ratio("b", 0.5).push_text("c", "x");
        assert_eq!(r.entries().len(), 3);
        assert_eq!(r.entries()[0].0, "a");
        assert_eq!(r.get("b"), Some(&MetricValue::Ratio(0.5)));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn json_schema_is_stable() {
        let mut r = Report::new("demo");
        r.push_count("settled", 42)
            .push_time("sweep_time", Duration::from_nanos(1500))
            .push_ratio("eff", 0.25)
            .push_text("note", "hi");
        let json = serde_json::to_string(&r).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["title"], "demo");
        assert_eq!(v["counters_enabled"], crate::COUNTERS_ENABLED);
        assert_eq!(v["metrics"]["settled"], 42);
        assert_eq!(v["metrics"]["sweep_time"], 1500);
        assert_eq!(v["metrics"]["eff"], 0.25);
        assert_eq!(v["metrics"]["note"], "hi");
    }

    #[test]
    fn merge_prefixed_namespaces_and_keeps_order() {
        let mut suite = Report::new("suite");
        suite.push_count("benchmarks", 2);
        let mut a = Report::new("sweep");
        a.push_count("settled", 5).push_ratio("eff", 0.5);
        let mut b = Report::new("gphast");
        b.push_count("settled", 9);
        suite.merge_prefixed("sweep", &a).merge_prefixed("gphast", &b);
        let names: Vec<&str> = suite.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["benchmarks", "sweep.settled", "sweep.eff", "gphast.settled"]
        );
        assert_eq!(suite.get("sweep.settled"), Some(&MetricValue::Count(5)));
        assert_eq!(suite.get("gphast.settled"), Some(&MetricValue::Count(9)));
        // The merged report serializes with the same stable schema.
        let v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&suite).unwrap()).unwrap();
        assert_eq!(v["metrics"]["sweep.settled"], 5);
    }

    #[test]
    fn display_formats_each_kind() {
        assert_eq!(MetricValue::Count(3).to_string(), "3");
        assert_eq!(MetricValue::Ratio(0.5).to_string(), "0.500");
        assert_eq!(MetricValue::Text("x".into()).to_string(), "x");
        assert!(!MetricValue::Time(Duration::from_millis(2)).to_string().is_empty());
    }
}
