#![allow(missing_docs)]
//! Table II at micro scale: k trees per sweep × kernel.

mod common;

use common::{fixture, sources};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phast_core::simd::SimdLevel;
use std::hint::black_box;

fn bench_multi_tree(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("multi_tree");
    group.sample_size(20);
    for k in [4usize, 8, 16] {
        let srcs = sources(k);
        group.throughput(Throughput::Elements(k as u64));
        for (name, level) in [
            ("scalar", SimdLevel::Scalar),
            ("sse41", SimdLevel::Sse41),
            ("avx2", SimdLevel::Avx2),
        ] {
            let mut e = f.phast.multi_engine(k);
            e.force_simd(level);
            if e.simd_level() != level {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name, k), &k, |b, _| {
                b.iter(|| {
                    e.run(&srcs);
                    black_box(e.labels()[0])
                })
            });
        }
        // Combined: SIMD + intra-level parallel blocks (GPHAST-on-CPU).
        let mut e = f.phast.multi_engine(k);
        group.bench_with_input(BenchmarkId::new("simd_par_sweep", k), &k, |b, _| {
            b.iter(|| {
                e.run_par(&srcs);
                black_box(e.labels()[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_tree);
criterion_main!(benches);
