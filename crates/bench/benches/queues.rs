#![allow(missing_docs)]
//! Priority-queue micro-benchmarks: the Table I queue comparison isolated
//! from the graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phast_pq::{DecreaseKeyQueue, DialQueue, FourHeap, IndexedBinaryHeap, RadixHeap, TwoLevelBuckets};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// A monotone Dijkstra-like workload: pop, then push/decrease neighbours
/// with bounded weight increments.
fn drive<Q: DecreaseKeyQueue>(q: &mut Q, n: u32, script: &[(u32, u32)]) -> u64 {
    let mut acc = 0u64;
    q.insert(0, 0);
    let mut idx = 0usize;
    let mut pops = 0u32;
    while let Some((item, key)) = q.pop_min() {
        acc = acc.wrapping_add(key as u64);
        pops += 1;
        if pops >= n {
            break; // bound the walk: one pop per item on average
        }
        for _ in 0..3 {
            let (di, dw) = script[idx % script.len()];
            idx += 1;
            let next = (item + 1 + di % 97) % n;
            let cand = key + 1 + dw % 999;
            // Monotone insert-only workload: cand > key, so bucket queues
            // stay within their span invariant.
            if !q.contains(next) && next > item {
                q.insert(next, cand);
            }
        }
    }
    acc
}

fn bench_queues(c: &mut Criterion) {
    let n = 50_000u32;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let script: Vec<(u32, u32)> = (0..4096).map(|_| (rng.random(), rng.random())).collect();
    let mut group = c.benchmark_group("queues");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("binary_heap", n), &n, |b, &n| {
        let mut q = IndexedBinaryHeap::new(n as usize);
        b.iter(|| {
            q.clear();
            black_box(drive(&mut q, n, &script))
        })
    });
    group.bench_with_input(BenchmarkId::new("four_heap", n), &n, |b, &n| {
        let mut q = FourHeap::new(n as usize);
        b.iter(|| {
            q.clear();
            black_box(drive(&mut q, n, &script))
        })
    });
    group.bench_with_input(BenchmarkId::new("dial", n), &n, |b, &n| {
        let mut q = DialQueue::new(n as usize, 1 << 12);
        b.iter(|| {
            q.clear();
            black_box(drive(&mut q, n, &script))
        })
    });
    group.bench_with_input(BenchmarkId::new("radix", n), &n, |b, &n| {
        let mut q = RadixHeap::new(n as usize);
        b.iter(|| {
            q.clear();
            black_box(drive(&mut q, n, &script))
        })
    });
    group.bench_with_input(BenchmarkId::new("two_level", n), &n, |b, &n| {
        let mut q = TwoLevelBuckets::with_bits(n as usize, 8);
        b.iter(|| {
            q.clear();
            black_box(drive(&mut q, n, &script))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
