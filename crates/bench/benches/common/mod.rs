//! Shared fixtures for the Criterion benches: one small road network plus
//! its PHAST preprocessing, built once.

use phast_core::Phast;
use phast_graph::dfs::dfs_layout;
use phast_graph::gen::{Metric, RoadNetworkConfig};
use phast_graph::reorder::relabel_graph;
use phast_graph::{Graph, Vertex};
use std::sync::OnceLock;

/// Benchmark instance size (kept small so `cargo bench` finishes quickly;
/// the `experiments` binary is the scaled-up harness).
pub const SIDE: u32 = 110; // ~12k vertices

#[allow(dead_code)] // each bench uses a different subset of the fixture
pub struct Fixture {
    pub graph: Graph,
    pub phast: Phast,
    pub coords: Vec<(f32, f32)>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

pub fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let net = RoadNetworkConfig::new(SIDE, SIDE, 7, Metric::TravelTime).build();
        let perm = dfs_layout(&net.graph, 0);
        let graph = relabel_graph(&net.graph, &perm);
        let coords = perm.apply_to_values(&net.coords);
        let phast = Phast::preprocess(&graph);
        Fixture {
            graph,
            phast,
            coords,
        }
    })
}

/// Deterministic source sample.
pub fn sources(count: usize) -> Vec<Vertex> {
    let n = fixture().graph.num_vertices();
    (0..n as Vertex)
        .step_by((n / count.max(1)).max(1))
        .take(count)
        .collect()
}
