#![allow(missing_docs)]
//! Table I at micro scale: one NSSP computation per algorithm.

mod common;

use common::{fixture, sources};
use criterion::{criterion_group, criterion_main, Criterion};
use phast_dijkstra::bfs::bfs;
use phast_dijkstra::dijkstra::Dijkstra;
use phast_pq::{DialQueue, FourHeap, IndexedBinaryHeap, RadixHeap};
use std::hint::black_box;

fn bench_single_tree(c: &mut Criterion) {
    let f = fixture();
    let srcs = sources(16);
    let fwd = f.graph.forward();
    let mut group = c.benchmark_group("single_tree");
    group.sample_size(20);

    let mut i = 0usize;
    let mut d = Dijkstra::<IndexedBinaryHeap>::new(fwd);
    group.bench_function("dijkstra_binary_heap", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(d.run_in_place(srcs[i]).2)
        })
    });
    let mut d = Dijkstra::<DialQueue>::new(fwd);
    group.bench_function("dijkstra_dial", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(d.run_in_place(srcs[i]).2)
        })
    });
    let mut d = Dijkstra::<RadixHeap>::new(fwd);
    group.bench_function("dijkstra_radix", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(d.run_in_place(srcs[i]).2)
        })
    });
    let mut d = Dijkstra::<FourHeap>::new(fwd);
    group.bench_function("dijkstra_four_heap", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(d.run_in_place(srcs[i]).2)
        })
    });
    let mut lazy = phast_dijkstra::LazyDijkstra::new(fwd);
    group.bench_function("dijkstra_lazy_heap", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(lazy.run(srcs[i]).1)
        })
    });
    group.bench_function("bfs", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(bfs(fwd, srcs[i]).visited)
        })
    });
    let mut e = f.phast.engine();
    group.bench_function("phast_sequential", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(e.distances_sweep(srcs[i])[0])
        })
    });
    let mut e = f.phast.engine();
    group.bench_function("phast_parallel_sweep", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(e.distances_par_sweep(srcs[i])[0])
        })
    });
    let mut e = f.phast.engine();
    group.bench_function("phast_upward_only", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(e.upward_search(srcs[i]).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_tree);
criterion_main!(benches);
