#![allow(missing_docs)]
//! Section VII applications at micro scale.

mod common;

use common::{fixture, sources};
use criterion::{criterion_group, criterion_main, Criterion};
use phast_apps::{
    betweenness_phast, diameter_dijkstra, diameter_phast, reaches_phast, ArcFlags, Partition,
};
use phast_core::{Direction, PhastBuilder};
use std::hint::black_box;

fn bench_apps(c: &mut Criterion) {
    let f = fixture();
    let srcs = sources(32);
    let mut group = c.benchmark_group("applications");
    group.sample_size(10);

    group.bench_function("diameter_phast_32src", |b| {
        b.iter(|| black_box(diameter_phast(&f.phast, &srcs)))
    });
    group.bench_function("diameter_dijkstra_32src", |b| {
        b.iter(|| black_box(diameter_dijkstra(f.graph.forward(), &srcs)))
    });
    group.bench_function("reach_phast_32src", |b| {
        b.iter(|| black_box(reaches_phast(&f.phast, &srcs)[0]))
    });
    group.bench_function("betweenness_phast_32src", |b| {
        b.iter(|| black_box(betweenness_phast(&f.phast, &srcs)[0]))
    });

    // Arc flags: preprocessing dominated by boundary trees.
    let rev = PhastBuilder::new()
        .direction(Direction::Reverse)
        .build(&f.graph);
    let part = Partition::grid(&f.coords, 4, 4);
    group.bench_function("arcflags_preprocess_16cells", |b| {
        b.iter(|| black_box(ArcFlags::preprocess_phast(&f.graph, part.clone(), &rev).count_set()))
    });
    let flags = ArcFlags::preprocess_phast(&f.graph, part.clone(), &rev);
    let n = f.graph.num_vertices() as u32;
    let mut i = 0usize;
    group.bench_function("arcflags_query", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(flags.query(&f.graph, srcs[i], n - 1 - srcs[i]).1)
        })
    });

    // Bidirectional arc flags: dearer preprocessing, smaller searches.
    let fwd_solver = PhastBuilder::new().build(&f.graph);
    let bi = phast_apps::BidirectionalArcFlags::preprocess_phast(
        &f.graph,
        part,
        &rev,
        &fwd_solver,
    );
    group.bench_function("arcflags_bidirectional_query", |b| {
        b.iter(|| {
            i = (i + 1) % srcs.len();
            black_box(bi.query(&f.graph, srcs[i], n - 1 - srcs[i]).1)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
