#![allow(missing_docs)]
//! CH point-to-point queries and preprocessing (Section II-B background).

mod common;

use common::{fixture, sources};
use criterion::{criterion_group, criterion_main, Criterion};
use phast_ch::{contract_graph, ChQuery, ContractionConfig};
use phast_dijkstra::BidirectionalDijkstra;
use phast_graph::gen::{Metric, RoadNetworkConfig};
use std::hint::black_box;

fn bench_ch(c: &mut Criterion) {
    let f = fixture();
    let h = contract_graph(&f.graph, &ContractionConfig::default());
    let srcs = sources(32);
    let mut group = c.benchmark_group("ch");
    group.sample_size(20);

    let mut q = ChQuery::new(&h);
    let mut i = 0usize;
    group.bench_function("p2p_query", |b| {
        b.iter(|| {
            i = (i + 1) % (srcs.len() - 1);
            black_box(q.query(srcs[i], srcs[i + 1]))
        })
    });
    let mut bd = BidirectionalDijkstra::new(f.graph.forward());
    group.bench_function("p2p_bidirectional_dijkstra", |b| {
        b.iter(|| {
            i = (i + 1) % (srcs.len() - 1);
            black_box(bd.query(srcs[i], srcs[i + 1]))
        })
    });
    group.bench_function("p2p_query_with_path", |b| {
        b.iter(|| {
            i = (i + 1) % (srcs.len() - 1);
            black_box(q.query_path(srcs[i], srcs[i + 1]).map(|(_, p)| p.len()))
        })
    });

    // Preprocessing throughput on a fresh small network.
    group.sample_size(10);
    let small = RoadNetworkConfig::new(40, 40, 9, Metric::TravelTime).build();
    group.bench_function("preprocess_1600v", |b| {
        b.iter(|| {
            black_box(contract_graph(&small.graph, &ContractionConfig::default()).num_shortcuts)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ch);
criterion_main!(benches);
