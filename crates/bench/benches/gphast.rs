#![allow(missing_docs)]
//! Table III at micro scale: the simulated GPHAST batch.
//!
//! This measures the *simulator's host cost* (how long it takes to run and
//! account a batch); the simulated device time is what the `experiments`
//! binary reports for Table III.

mod common;

use common::{fixture, sources};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phast_gpu::{DeviceProfile, Gphast};
use std::hint::black_box;

fn bench_gphast(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("gphast_simulation");
    group.sample_size(10);
    for k in [1usize, 4, 16] {
        let srcs = sources(k);
        let mut gp = Gphast::new(&f.phast, DeviceProfile::gtx_580(), k).expect("fits");
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("batch", k), &k, |b, _| {
            b.iter(|| black_box(gp.run(&srcs).dram_transactions))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gphast);
criterion_main!(benches);
