//! Plain-text table formatting in the style of the paper's tables.

use phast_obs::{MetricValue, Report};

/// A simple left-padded text table with a caption.
pub struct Table {
    caption: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(caption: impl Into<String>, header: &[&str]) -> Self {
        Self {
            caption: caption.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut cells: Vec<String> = cells.to_vec();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Convenience for `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.caption));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", cell, width = widths[c]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &widths));
        // `cols` may be zero (a caption-only table); saturate instead of
        // underflowing the separator width.
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1))
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Renders and prints.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Renders an observability [`Report`] as a two-column [`Table`]
/// (durations in adaptive units, everything else via its `Display`).
pub fn report_to_table(r: &Report) -> Table {
    let mut t = Table::new(r.title(), &["metric", "value"]);
    for (name, value) in r.entries() {
        let cell = match value {
            MetricValue::Time(d) => fmt_duration(*d),
            other => other.to_string(),
        };
        t.row(&[name.clone(), cell]);
    }
    t
}

/// Formats a `Duration` in adaptive units (the paper mixes ms and s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{:.1} s", s)
    } else if s >= 1.0 {
        format!("{:.2} s", s)
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats "d:hh:mm" like Table VI's `n` trees column.
pub fn fmt_days(d: std::time::Duration) -> String {
    let total_min = d.as_secs() / 60;
    let days = total_min / (24 * 60);
    let hours = total_min / 60 % 24;
    let mins = total_min % 60;
    format!("{days}:{hours:02}:{mins:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_str(&["a", "1"]).row_str(&["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.row_str(&["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn empty_header_renders_without_panicking() {
        // Regression: the separator width underflowed `usize` for a
        // zero-column table.
        let mut t = Table::new("empty", &[]);
        t.row_str(&[]).row(&["dropped".into()]);
        let s = t.render();
        assert!(s.contains("== empty =="), "{s}");
        // A single-column table exercises the `2 * (cols - 1) == 0` edge.
        let mut t = Table::new("one", &["only"]);
        t.row_str(&["x"]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn report_renders_as_table() {
        let mut r = Report::new("obs");
        r.push_count("settled", 7)
            .push_time("sweep_time", Duration::from_millis(3));
        let s = report_to_table(&r).render();
        assert!(s.contains("== obs =="));
        assert!(s.contains("settled"));
        assert!(s.contains("3.00 ms"));
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_days(Duration::from_secs(90_000)), "1:01:00");
    }
}
