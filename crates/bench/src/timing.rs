//! Wall-clock measurement helpers.
//!
//! Two tiers: [`Timed`] (one total over `runs` repetitions — fine for
//! table generation, but it hides variance entirely) and [`Samples`] /
//! [`SampleStats`] (per-iteration durations after explicit warmup,
//! summarized as median/MAD/p95 — what the perf-regression harness in
//! [`crate::regress`] stores and compares).

use std::time::{Duration, Instant};

/// A measured quantity: total wall time over `runs` repetitions.
#[derive(Clone, Copy, Debug)]
pub struct Timed {
    /// Total elapsed time.
    pub total: Duration,
    /// Repetitions measured.
    pub runs: usize,
}

impl Timed {
    /// Average time per repetition.
    pub fn per_run(&self) -> Duration {
        if self.runs == 0 {
            Duration::ZERO
        } else {
            self.total / self.runs as u32
        }
    }

    /// Average milliseconds per repetition.
    pub fn ms(&self) -> f64 {
        self.per_run().as_secs_f64() * 1e3
    }
}

/// Times one execution of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times `runs` executions of `f` (called with the repetition index).
pub fn time_per(runs: usize, mut f: impl FnMut(usize)) -> Timed {
    let start = Instant::now();
    for i in 0..runs {
        f(i);
    }
    Timed {
        total: start.elapsed(),
        runs,
    }
}

/// Per-iteration measurements of one benchmark: `samples.len()` timed
/// iterations taken after `warmup` untimed ones.
#[derive(Clone, Debug)]
pub struct Samples {
    /// Untimed iterations run before sampling started.
    pub warmup: usize,
    /// One wall-clock duration per timed iteration, in run order.
    pub samples: Vec<Duration>,
}

/// Robust summary of per-iteration samples (all durations in integer
/// nanoseconds, matching the `BENCH_*.json` schema).
///
/// Invariants (tested property-style in `tests/stats_props.rs`):
/// `min <= median <= max`, `median <= p95 <= max`, and `mad >= 0` by
/// construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SampleStats {
    /// Timed iterations summarized.
    pub runs: usize,
    /// Median duration, ns.
    pub median_ns: u64,
    /// Median absolute deviation from the median, ns — the robust noise
    /// estimate the regression thresholds scale with.
    pub mad_ns: u64,
    /// 95th-percentile duration (nearest-rank), ns.
    pub p95_ns: u64,
    /// Fastest iteration, ns.
    pub min_ns: u64,
    /// Slowest iteration, ns.
    pub max_ns: u64,
    /// Arithmetic mean, ns.
    pub mean_ns: u64,
}

/// Median of a **sorted** nanosecond slice (mean of the middle two when
/// even). Empty input is the caller's bug.
fn median_sorted(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        // Midpoint without overflow.
        let (a, b) = (sorted[n / 2 - 1], sorted[n / 2]);
        a + (b - a) / 2
    }
}

impl Samples {
    /// Runs `f` for `warmup` untimed iterations, then `runs` timed ones
    /// (the closure receives the global iteration index) and collects one
    /// duration per timed iteration.
    pub fn collect(warmup: usize, runs: usize, mut f: impl FnMut(usize)) -> Samples {
        for i in 0..warmup {
            f(i);
        }
        let mut samples = Vec::with_capacity(runs);
        for i in 0..runs {
            let start = Instant::now();
            f(warmup + i);
            samples.push(start.elapsed());
        }
        Samples { warmup, samples }
    }

    /// Summarizes the samples. Panics on zero samples — an empty
    /// benchmark is a harness bug, not a measurement.
    pub fn stats(&self) -> SampleStats {
        assert!(!self.samples.is_empty(), "no samples to summarize");
        let mut ns: Vec<u64> = self
            .samples
            .iter()
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .collect();
        ns.sort_unstable();
        let n = ns.len();
        let median = median_sorted(&ns);
        let mut dev: Vec<u64> = ns.iter().map(|&x| x.abs_diff(median)).collect();
        dev.sort_unstable();
        let mad = median_sorted(&dev);
        // Nearest-rank p95: the smallest sample >= 95% of the others.
        let p95 = ns[((n * 95).div_ceil(100)).clamp(1, n) - 1];
        let mean = (ns.iter().map(|&x| u128::from(x)).sum::<u128>() / n as u128)
            .min(u128::from(u64::MAX)) as u64;
        SampleStats {
            runs: n,
            median_ns: median,
            mad_ns: mad,
            p95_ns: p95,
            min_ns: ns[0],
            max_ns: ns[n - 1],
            mean_ns: mean,
        }
    }

    /// The raw samples as integer nanoseconds, in run order.
    pub fn to_ns(&self) -> Vec<u64> {
        self.samples
            .iter()
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_run_divides() {
        let t = Timed {
            total: Duration::from_millis(100),
            runs: 4,
        };
        assert_eq!(t.per_run(), Duration::from_millis(25));
        assert!((t.ms() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn zero_runs_is_zero() {
        let t = Timed {
            total: Duration::from_millis(100),
            runs: 0,
        };
        assert_eq!(t.per_run(), Duration::ZERO);
    }

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    fn from_ns(ns: &[u64]) -> Samples {
        Samples {
            warmup: 0,
            samples: ns.iter().map(|&n| Duration::from_nanos(n)).collect(),
        }
    }

    #[test]
    fn sample_stats_known_values() {
        // Sorted: [10, 20, 30, 40, 100]; median 30; deviations sorted
        // [0, 10, 10, 20, 70] -> MAD 10; p95 = max at n=5.
        let s = from_ns(&[30, 10, 100, 20, 40]).stats();
        assert_eq!(s.runs, 5);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.mad_ns, 10);
        assert_eq!(s.p95_ns, 100);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.mean_ns, 40);
    }

    #[test]
    fn sample_stats_even_count_and_constant_series() {
        let s = from_ns(&[10, 20]).stats();
        assert_eq!(s.median_ns, 15);
        let s = from_ns(&[7, 7, 7, 7]).stats();
        assert_eq!((s.median_ns, s.mad_ns, s.p95_ns), (7, 0, 7));
    }

    #[test]
    fn collect_runs_warmup_then_samples_in_order() {
        let mut seen = Vec::new();
        let s = Samples::collect(2, 5, |i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(s.warmup, 2);
        assert_eq!(s.samples.len(), 5);
        assert_eq!(s.to_ns().len(), 5);
    }
}
