//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// A measured quantity: total wall time over `runs` repetitions.
#[derive(Clone, Copy, Debug)]
pub struct Timed {
    /// Total elapsed time.
    pub total: Duration,
    /// Repetitions measured.
    pub runs: usize,
}

impl Timed {
    /// Average time per repetition.
    pub fn per_run(&self) -> Duration {
        if self.runs == 0 {
            Duration::ZERO
        } else {
            self.total / self.runs as u32
        }
    }

    /// Average milliseconds per repetition.
    pub fn ms(&self) -> f64 {
        self.per_run().as_secs_f64() * 1e3
    }
}

/// Times one execution of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times `runs` executions of `f` (called with the repetition index).
pub fn time_per(runs: usize, mut f: impl FnMut(usize)) -> Timed {
    let start = Instant::now();
    for i in 0..runs {
        f(i);
    }
    Timed {
        total: start.elapsed(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_run_divides() {
        let t = Timed {
            total: Duration::from_millis(100),
            runs: 4,
        };
        assert_eq!(t.per_run(), Duration::from_millis(25));
        assert!((t.ms() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn zero_runs_is_zero() {
        let t = Timed {
            total: Duration::from_millis(100),
            runs: 0,
        };
        assert_eq!(t.per_run(), Duration::ZERO);
    }

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
