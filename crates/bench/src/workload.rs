//! Experiment instances and source sampling.

use phast_graph::gen::{Metric, RoadNetwork, RoadNetworkConfig};
use phast_graph::Vertex;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which benchmark network to generate (the paper's two instances,
/// synthesized — see the substitution table in `DESIGN.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceKind {
    /// Square "Europe-like" network (the paper's default instance).
    Europe,
    /// Wider, sparser "USA-like" network (Table VII).
    Usa,
}

/// Instance configuration: kind, metric, and target vertex count.
#[derive(Clone, Debug)]
pub struct InstanceConfig {
    /// Which synthetic continent.
    pub kind: InstanceKind,
    /// Arc weight metric.
    pub metric: Metric,
    /// Approximate number of vertices before SCC extraction.
    pub target_vertices: usize,
    /// Generator seed.
    pub seed: u64,
}

impl InstanceConfig {
    /// The default experiment instance: Europe-like, travel times, with
    /// `target_vertices` scaled by the `PHAST_SCALE` environment variable
    /// if set (vertex count, e.g. `PHAST_SCALE=1000000`).
    pub fn default_europe() -> Self {
        Self {
            kind: InstanceKind::Europe,
            metric: Metric::TravelTime,
            target_vertices: scale_from_env(250_000),
            seed: 20110516, // the paper's publication month
        }
    }

    /// The USA-like counterpart at the paper's ~4/3 size ratio.
    pub fn default_usa() -> Self {
        Self {
            kind: InstanceKind::Usa,
            metric: Metric::TravelTime,
            target_vertices: scale_from_env(250_000) * 4 / 3,
            seed: 20110517,
        }
    }

    /// Switches the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Overrides the size.
    pub fn with_vertices(mut self, n: usize) -> Self {
        self.target_vertices = n;
        self
    }

    /// Generates the network.
    pub fn build(&self) -> Instance {
        let cfg = match self.kind {
            InstanceKind::Europe => {
                RoadNetworkConfig::europe_like(self.target_vertices, self.seed, self.metric)
            }
            InstanceKind::Usa => {
                RoadNetworkConfig::usa_like(self.target_vertices, self.seed, self.metric)
            }
        };
        Instance {
            name: format!(
                "{:?}-{}",
                self.kind,
                match self.metric {
                    Metric::TravelTime => "time",
                    Metric::TravelDistance => "dist",
                }
            ),
            network: cfg.build(),
        }
    }
}

/// Reads the scale override from `PHAST_SCALE`.
pub fn scale_from_env(default: usize) -> usize {
    std::env::var("PHAST_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A named benchmark network.
pub struct Instance {
    /// Display name (kind + metric).
    pub name: String,
    /// The generated road network.
    pub network: RoadNetwork,
}

impl Instance {
    /// `count` uniformly random source vertices (deterministic in `seed`).
    pub fn sources(&self, count: usize, seed: u64) -> Vec<Vertex> {
        let n = self.network.num_vertices();
        let mut all: Vec<Vertex> = (0..n as Vertex).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        all.shuffle(&mut rng);
        all.truncate(count.min(n));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instances_build() {
        let inst = InstanceConfig {
            kind: InstanceKind::Europe,
            metric: Metric::TravelTime,
            target_vertices: 1_000,
            seed: 1,
        }
        .build();
        assert!(inst.network.num_vertices() > 800);
        assert_eq!(inst.name, "Europe-time");
    }

    #[test]
    fn sources_are_unique_and_deterministic() {
        let inst = InstanceConfig {
            kind: InstanceKind::Usa,
            metric: Metric::TravelDistance,
            target_vertices: 2_000,
            seed: 2,
        }
        .build();
        let a = inst.sources(50, 7);
        let b = inst.sources(50, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }
}
