//! Experiment instances and source sampling.

use phast_graph::gen::{Metric, RoadNetwork, RoadNetworkConfig};
use phast_graph::Vertex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which benchmark network to generate (the paper's two instances,
/// synthesized — see the substitution table in `DESIGN.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceKind {
    /// Square "Europe-like" network (the paper's default instance).
    Europe,
    /// Wider, sparser "USA-like" network (Table VII).
    Usa,
}

/// Instance configuration: kind, metric, and target vertex count.
#[derive(Clone, Debug)]
pub struct InstanceConfig {
    /// Which synthetic continent.
    pub kind: InstanceKind,
    /// Arc weight metric.
    pub metric: Metric,
    /// Approximate number of vertices before SCC extraction.
    pub target_vertices: usize,
    /// Generator seed.
    pub seed: u64,
}

impl InstanceConfig {
    /// The default experiment instance: Europe-like, travel times, with
    /// `target_vertices` scaled by the `PHAST_SCALE` environment variable
    /// if set (vertex count, e.g. `PHAST_SCALE=1000000`).
    pub fn default_europe() -> Self {
        Self {
            kind: InstanceKind::Europe,
            metric: Metric::TravelTime,
            target_vertices: scale_from_env(250_000),
            seed: 20110516, // the paper's publication month
        }
    }

    /// The USA-like counterpart at the paper's ~4/3 size ratio.
    pub fn default_usa() -> Self {
        Self {
            kind: InstanceKind::Usa,
            metric: Metric::TravelTime,
            target_vertices: scale_from_env(250_000) * 4 / 3,
            seed: 20110517,
        }
    }

    /// Switches the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Overrides the size.
    pub fn with_vertices(mut self, n: usize) -> Self {
        self.target_vertices = n;
        self
    }

    /// Generates the network.
    pub fn build(&self) -> Instance {
        let cfg = match self.kind {
            InstanceKind::Europe => {
                RoadNetworkConfig::europe_like(self.target_vertices, self.seed, self.metric)
            }
            InstanceKind::Usa => {
                RoadNetworkConfig::usa_like(self.target_vertices, self.seed, self.metric)
            }
        };
        Instance {
            name: format!(
                "{:?}-{}",
                self.kind,
                match self.metric {
                    Metric::TravelTime => "time",
                    Metric::TravelDistance => "dist",
                }
            ),
            network: cfg.build(),
        }
    }
}

/// Reads the scale override from `PHAST_SCALE`. A malformed value (e.g.
/// `PHAST_SCALE=1e6`) is **not** silently ignored — the experiment would
/// quietly measure the wrong instance size — it warns on stderr and falls
/// back to `default`.
pub fn scale_from_env(default: usize) -> usize {
    let raw = std::env::var("PHAST_SCALE").ok();
    let (scale, warning) = parse_scale(raw.as_deref(), default);
    if let Some(w) = warning {
        eprintln!("warning: {w}");
    }
    scale
}

/// Pure core of [`scale_from_env`]: the scale to use, plus the warning a
/// malformed or unusable override must surface.
pub fn parse_scale(raw: Option<&str>, default: usize) -> (usize, Option<String>) {
    match raw {
        None => (default, None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(0) => (
                default,
                Some(format!(
                    "PHAST_SCALE=0 is not a usable instance size; using default {default}"
                )),
            ),
            Ok(v) => (v, None),
            Err(e) => (
                default,
                Some(format!(
                    "malformed PHAST_SCALE `{s}` ({e}); using default {default} — \
                     set a plain vertex count, e.g. PHAST_SCALE=1000000"
                )),
            ),
        },
    }
}

/// A named benchmark network.
pub struct Instance {
    /// Display name (kind + metric).
    pub name: String,
    /// The generated road network.
    pub network: RoadNetwork,
}

impl Instance {
    /// `count` uniformly random distinct source vertices (deterministic in
    /// `seed`). Sampled in O(`count`) time and memory — the previous full
    /// Fisher–Yates shuffle allocated and permuted all `n` vertices to draw
    /// a handful of sources (4 MB per call at `PHAST_SCALE=1000000`).
    pub fn sources(&self, count: usize, seed: u64) -> Vec<Vertex> {
        let n = self.network.num_vertices();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rand::seq::index::sample(&mut rng, n, count.min(n))
            .into_iter()
            .map(|i| i as Vertex)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instances_build() {
        let inst = InstanceConfig {
            kind: InstanceKind::Europe,
            metric: Metric::TravelTime,
            target_vertices: 1_000,
            seed: 1,
        }
        .build();
        assert!(inst.network.num_vertices() > 800);
        assert_eq!(inst.name, "Europe-time");
    }

    #[test]
    fn sources_are_unique_and_deterministic() {
        let inst = InstanceConfig {
            kind: InstanceKind::Usa,
            metric: Metric::TravelDistance,
            target_vertices: 2_000,
            seed: 2,
        }
        .build();
        let a = inst.sources(50, 7);
        let b = inst.sources(50, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        // Pin the sampler's output so an accidental change to the
        // algorithm (or the vendored `rand` stream) is visible here, not
        // in silently shifted benchmark workloads.
        assert_eq!(&a[..5], PINNED_PREFIX, "sample stream changed");
        // Every index is in range, and asking for more sources than
        // vertices returns each vertex exactly once.
        let n = inst.network.num_vertices();
        assert!(a.iter().all(|&v| (v as usize) < n));
        let mut all = inst.sources(10 * n, 7);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    /// First five vertices of `sources(50, 7)` on the Usa-dist seed-2
    /// instance above, captured from the O(count) index sampler.
    const PINNED_PREFIX: &[Vertex] = &[677, 1247, 585, 1500, 1642];

    #[test]
    fn scale_parse_accepts_plain_counts_and_warns_otherwise() {
        assert_eq!(parse_scale(None, 123), (123, None));
        assert_eq!(parse_scale(Some("1000"), 123), (1000, None));
        assert_eq!(parse_scale(Some(" 42 "), 123), (42, None));
        // A malformed override falls back loudly, naming the bad value.
        let (v, warn) = parse_scale(Some("1e6"), 123);
        assert_eq!(v, 123);
        let warn = warn.expect("malformed PHAST_SCALE must warn");
        assert!(warn.contains("1e6") && warn.contains("123"), "{warn}");
        // Zero is syntactically valid but unusable; also loud.
        let (v, warn) = parse_scale(Some("0"), 123);
        assert_eq!(v, 123);
        assert!(warn.is_some());
    }
}
