//! The energy model behind Table VI's joule columns.
//!
//! The paper measured whole-system wall power under load; we reuse those
//! published watt figures as model constants and multiply by our measured
//! (or simulated) times. This is a *model*, clearly labelled as such in
//! `EXPERIMENTS.md` — the relevant shape is that energy ratios track
//! time × watts, which is exactly how the paper compares platforms.

use std::time::Duration;

/// Published whole-system power draw under full load (watts).
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// System description.
    pub name: &'static str,
    /// Watts under load.
    pub watts: f64,
}

/// The paper's measured systems (Section VIII-F).
pub const SYSTEMS: &[PowerModel] = &[
    PowerModel {
        name: "M1-4 (no GPU)",
        watts: 163.0,
    },
    PowerModel {
        name: "M1-4 + GTX 580",
        watts: 375.0,
    },
    PowerModel {
        name: "M1-4 + GTX 480",
        watts: 390.0,
    },
    PowerModel {
        name: "M2-6",
        watts: 332.0,
    },
    PowerModel {
        name: "M4-12",
        watts: 747.0,
    },
];

impl PowerModel {
    /// Energy in joules for a task of the given duration.
    pub fn joules(&self, d: Duration) -> f64 {
        self.watts * d.as_secs_f64()
    }

    /// Energy in megajoules.
    pub fn megajoules(&self, d: Duration) -> f64 {
        self.joules(d) / 1e6
    }
}

/// The model used for CPU runs on *this* machine: the paper's commodity
/// workstation (M1-4) figure, since we cannot measure wall power here.
pub fn host_model() -> PowerModel {
    SYSTEMS[0]
}

/// The model for simulated GPU runs.
pub fn gpu_model(gtx_580: bool) -> PowerModel {
    if gtx_580 {
        SYSTEMS[1]
    } else {
        SYSTEMS[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joules_scale_with_time_and_watts() {
        let m = PowerModel {
            name: "x",
            watts: 100.0,
        };
        assert_eq!(m.joules(Duration::from_secs(2)), 200.0);
        assert_eq!(m.megajoules(Duration::from_secs(20_000)), 2.0);
    }

    #[test]
    fn published_figures_present() {
        assert_eq!(SYSTEMS.len(), 5);
        assert_eq!(gpu_model(true).watts, 375.0);
        assert_eq!(host_model().watts, 163.0);
    }
}
