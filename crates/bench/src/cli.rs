//! Shared command-line plumbing for the workspace binaries
//! (`phast_cli`, `loadgen`, `experiments`).
//!
//! The parser is a declarative flag table: each flag is `(name,
//! takes_value)`, and anything outside the table is an error — a typo
//! fails loudly instead of being silently ignored. All helpers return
//! `Err(String)` with enough context (the flag name, the file path) that
//! `error: {e}` on stderr is actionable on its own; none of them panic on
//! bad input.

use phast_ch::Hierarchy;
use phast_core::Phast;
use phast_graph::dimacs;
use phast_graph::Graph;
use phast_serve::ServeConfig;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::time::Duration;

/// Parsed command-line flags, validated against a declarative spec.
#[derive(Debug)]
pub struct Flags<'a> {
    found: Vec<(&'static str, Option<&'a str>)>,
    positionals: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    /// Parses `args` against `spec` (`(name, takes_value)` pairs),
    /// rejecting unknown flags and flags with a missing value.
    pub fn parse(args: &'a [String], spec: &[(&'static str, bool)]) -> Result<Self, String> {
        let mut found = Vec::new();
        let mut positionals = Vec::new();
        let mut iter = args.iter();
        while let Some(a) = iter.next() {
            // Flags start with `-` followed by a non-digit, so a negative
            // number still reads as a value / positional.
            let is_flag = a.len() > 1
                && a.starts_with('-')
                && !a[1..].starts_with(|c: char| c.is_ascii_digit());
            if !is_flag {
                positionals.push(a.as_str());
                continue;
            }
            match spec.iter().find(|(name, _)| *name == a.as_str()) {
                None => {
                    let known: Vec<&str> = spec.iter().map(|(n, _)| *n).collect();
                    return Err(format!(
                        "unknown flag `{a}` (expected one of: {})",
                        known.join(", ")
                    ));
                }
                Some(&(name, false)) => found.push((name, None)),
                Some(&(name, true)) => {
                    let v = iter
                        .next()
                        .ok_or_else(|| format!("missing value after {name}"))?;
                    found.push((name, Some(v.as_str())));
                }
            }
        }
        Ok(Self { found, positionals })
    }

    /// The value of `name`, if the flag was given with one.
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.found
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    /// Whether `name` was given at all.
    pub fn has(&self, name: &str) -> bool {
        self.found.iter().any(|(n, _)| *n == name)
    }

    /// The value of `name`, or an error naming the missing flag.
    pub fn require(&self, name: &str) -> Result<&'a str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing {name} <value>"))
    }

    /// The first positional argument, or an error naming what it should
    /// have been (e.g. `"graph file"`).
    pub fn positional(&self, what: &str) -> Result<&'a str, String> {
        self.positionals
            .first()
            .copied()
            .ok_or_else(|| format!("missing {what}"))
    }
}

/// Parses a numeric flag value, naming the flag in the error.
pub fn parse_num<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("invalid {what} `{value}`: {e}"))
}

/// Parses the common `--threads` knob: absent means `0`, which lets the
/// library fall back to `PHAST_THREADS` / the ambient rayon pool (see
/// `phast_ch::resolve_threads`).
pub fn parse_threads(f: &Flags) -> Result<usize, String> {
    match f.get("--threads") {
        Some(v) => parse_num(v, "--threads"),
        None => Ok(0),
    }
}

/// Opens a file for reading, naming the path in the error.
pub fn open_file(path: &str) -> Result<File, String> {
    File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))
}

/// Creates (truncating) a file for writing, naming the path in the error.
pub fn create_file(path: &str) -> Result<File, String> {
    File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))
}

/// Reads a DIMACS `.gr` graph, naming the path in parse errors.
pub fn load_graph(path: &str) -> Result<Graph, String> {
    dimacs::read_gr(BufReader::new(open_file(path)?))
        .map_err(|e| format!("cannot parse DIMACS graph `{path}`: {e}"))
}

/// Loads a preprocessed instance artifact, sniffing the format by magic
/// bytes: binary `.phast` stores load through `phast-store` with full
/// integrity checking (and may bundle the contraction hierarchy);
/// anything else is treated as a legacy JSON artifact and structurally
/// re-validated. Either way a damaged file is a clean error, not a panic.
///
/// Binary stores load through [`phast_store::load_instance_mmap`]: an
/// aligned (v3) artifact is validated once and then *borrowed* from the
/// page cache instead of copied to the heap; legacy or unmappable files
/// silently fall back to the heap path.
pub fn load_instance(path: &str) -> Result<(Phast, Option<Hierarchy>), String> {
    if phast_store::is_store_file(Path::new(path)) {
        let loaded = phast_store::load_instance_mmap(Path::new(path))
            .map_err(|e| format!("cannot load artifact `{path}`: {e}"))?;
        if loaded.zero_copy {
            eprintln!("loaded `{path}` zero-copy (mmap)");
        }
        Ok((loaded.phast, loaded.hierarchy))
    } else {
        let p: Phast = serde_json::from_reader(BufReader::new(open_file(path)?))
            .map_err(|e| format!("cannot parse artifact `{path}`: {e}"))?;
        p.validate()
            .map_err(|e| format!("corrupt artifact `{path}`: {e}"))?;
        Ok((p, None))
    }
}

/// The scheduler / hardening flags every serve-shaped binary shares
/// (`phast_cli serve`, `loadgen`). Extend a command's flag table with
/// these, then build the config with [`serve_config_from_flags`].
pub const SERVE_FLAGS: [(&str, bool); 10] = [
    ("--k", true),
    ("--window-ms", true),
    ("--workers", true),
    ("--queue", true),
    ("--max-conns", true),
    ("--io-timeout-ms", true),
    ("--max-line-bytes", true),
    ("--shed-queue-depth", true),
    ("--shed-wait-ms", true),
    ("--epoch-history", true),
];

/// Builds a [`ServeConfig`] from the shared [`SERVE_FLAGS`], with
/// hardened parse errors (the offending flag and value are always named)
/// and range validation on every knob. Flags that were not given keep the
/// `ServeConfig::default()` value — except `--shed-queue-depth`, whose
/// default scales to 3/4 of the configured queue capacity.
pub fn serve_config_from_flags(f: &Flags) -> Result<ServeConfig, String> {
    let d = ServeConfig::default();
    let queue_capacity: usize = match f.get("--queue") {
        Some(v) => parse_num(v, "--queue")?,
        None => d.queue_capacity,
    };
    let cfg = ServeConfig {
        max_k: match f.get("--k") {
            Some(v) => parse_num(v, "--k")?,
            None => d.max_k,
        },
        window: Duration::from_millis(match f.get("--window-ms") {
            Some(v) => parse_num(v, "--window-ms")?,
            None => d.window.as_millis() as u64,
        }),
        queue_capacity,
        workers: match f.get("--workers") {
            Some(v) => parse_num(v, "--workers")?,
            None => d.workers,
        },
        shed_queue_depth: match f.get("--shed-queue-depth") {
            Some(v) => parse_num(v, "--shed-queue-depth")?,
            None => (queue_capacity / 4 * 3).max(1),
        },
        shed_wait: match f.get("--shed-wait-ms") {
            Some(v) => Some(Duration::from_millis(parse_num(v, "--shed-wait-ms")?)),
            None => d.shed_wait,
        },
        max_conns: match f.get("--max-conns") {
            Some(v) => parse_num(v, "--max-conns")?,
            None => d.max_conns,
        },
        io_timeout: Duration::from_millis(match f.get("--io-timeout-ms") {
            Some(v) => parse_num(v, "--io-timeout-ms")?,
            None => d.io_timeout.as_millis() as u64,
        }),
        max_line_bytes: match f.get("--max-line-bytes") {
            Some(v) => parse_num(v, "--max-line-bytes")?,
            None => d.max_line_bytes,
        },
        panic_on_source: None,
        // 0 is a legal value: it disables the rollback ring (and with it
        // the guard window's ability to auto-roll-back).
        epoch_history: match f.get("--epoch-history") {
            Some(v) => parse_num(v, "--epoch-history")?,
            None => d.epoch_history,
        },
    };
    if cfg.max_k == 0 || cfg.max_k > phast_core::simd::MAX_K {
        return Err(format!("--k must be in 1..={}", phast_core::simd::MAX_K));
    }
    if cfg.workers == 0 {
        return Err("--workers must be positive".into());
    }
    if cfg.queue_capacity == 0 {
        return Err("--queue must be positive".into());
    }
    if cfg.shed_queue_depth == 0 {
        return Err("--shed-queue-depth must be positive (set >= --queue to disable shedding)".into());
    }
    if cfg.max_conns == 0 {
        return Err("--max-conns must be positive".into());
    }
    if cfg.max_line_bytes < 64 {
        return Err("--max-line-bytes must be at least 64 (a minimal request line)".into());
    }
    Ok(cfg)
}

/// Checks a vertex id against the graph size, naming the flag on failure.
pub fn check_vertex(v: u32, n: usize, what: &str) -> Result<(), String> {
    if (v as usize) < n {
        Ok(())
    } else {
        Err(format!("{what} {v} out of range (graph has {n} vertices)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let a = args(&["--sorce", "3"]);
        let err = Flags::parse(&a, &[("--source", true)]).unwrap_err();
        assert!(err.contains("--sorce"), "{err}");
        assert!(err.contains("--source"), "{err}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let a = args(&["--source"]);
        let err = Flags::parse(&a, &[("--source", true)]).unwrap_err();
        assert!(err.contains("--source"), "{err}");
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = args(&["--shift", "-3", "input.gr"]);
        let f = Flags::parse(&a, &[("--shift", true)]).unwrap();
        assert_eq!(f.get("--shift"), Some("-3"));
        assert_eq!(f.positional("graph file").unwrap(), "input.gr");
    }

    #[test]
    fn parse_num_names_the_flag() {
        let err = parse_num::<u32>("abc", "--source").unwrap_err();
        assert!(err.contains("--source") && err.contains("abc"), "{err}");
    }

    #[test]
    fn serve_config_defaults_and_overrides() {
        let a = args(&[]);
        let f = Flags::parse(&a, &SERVE_FLAGS).unwrap();
        let cfg = serve_config_from_flags(&f).unwrap();
        let d = ServeConfig::default();
        assert_eq!(cfg.max_k, d.max_k);
        assert_eq!(cfg.max_conns, d.max_conns);
        assert_eq!(cfg.shed_queue_depth, d.queue_capacity / 4 * 3);

        let a = args(&[
            "--k", "8", "--queue", "64", "--max-conns", "32", "--io-timeout-ms", "500",
            "--max-line-bytes", "4096", "--shed-queue-depth", "16", "--shed-wait-ms", "50",
            "--epoch-history", "2",
        ]);
        let f = Flags::parse(&a, &SERVE_FLAGS).unwrap();
        let cfg = serve_config_from_flags(&f).unwrap();
        assert_eq!(cfg.max_k, 8);
        assert_eq!(cfg.queue_capacity, 64);
        assert_eq!(cfg.max_conns, 32);
        assert_eq!(cfg.io_timeout, Duration::from_millis(500));
        assert_eq!(cfg.max_line_bytes, 4096);
        assert_eq!(cfg.shed_queue_depth, 16);
        assert_eq!(cfg.shed_wait, Some(Duration::from_millis(50)));
        assert_eq!(cfg.epoch_history, 2);

        // 0 legally disables the rollback ring; garbage is still named.
        let a = args(&["--epoch-history", "0"]);
        let f = Flags::parse(&a, &SERVE_FLAGS).unwrap();
        assert_eq!(serve_config_from_flags(&f).unwrap().epoch_history, 0);
        let a = args(&["--epoch-history", "many"]);
        let f = Flags::parse(&a, &SERVE_FLAGS).unwrap();
        let err = serve_config_from_flags(&f).unwrap_err();
        assert!(err.contains("--epoch-history"), "{err}");
    }

    #[test]
    fn serve_config_rejects_hostile_values_with_the_flag_named() {
        for (flags, needle) in [
            (vec!["--k", "0"], "--k"),
            (vec!["--k", "banana"], "banana"),
            (vec!["--workers", "0"], "--workers"),
            (vec!["--queue", "0"], "--queue"),
            (vec!["--max-conns", "0"], "--max-conns"),
            (vec!["--max-line-bytes", "8"], "--max-line-bytes"),
            (vec!["--shed-queue-depth", "0"], "--shed-queue-depth"),
            (vec!["--io-timeout-ms", "-7"], "--io-timeout-ms"),
            (vec!["--max-conns", "999999999999999999999999"], "--max-conns"),
        ] {
            let a = args(&flags);
            let f = Flags::parse(&a, &SERVE_FLAGS).unwrap();
            let err = serve_config_from_flags(&f).unwrap_err();
            assert!(err.contains(needle), "{flags:?}: {err}");
        }
    }

    #[test]
    fn check_vertex_names_flag_and_bound() {
        assert!(check_vertex(3, 4, "--from").is_ok());
        let err = check_vertex(4, 4, "--from").unwrap_err();
        assert!(err.contains("--from") && err.contains('4'), "{err}");
    }
}
