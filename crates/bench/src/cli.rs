//! Shared command-line plumbing for the workspace binaries
//! (`phast_cli`, `loadgen`, `experiments`).
//!
//! The parser is a declarative flag table: each flag is `(name,
//! takes_value)`, and anything outside the table is an error — a typo
//! fails loudly instead of being silently ignored. All helpers return
//! `Err(String)` with enough context (the flag name, the file path) that
//! `error: {e}` on stderr is actionable on its own; none of them panic on
//! bad input.

use phast_ch::Hierarchy;
use phast_core::Phast;
use phast_graph::dimacs;
use phast_graph::Graph;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Parsed command-line flags, validated against a declarative spec.
#[derive(Debug)]
pub struct Flags<'a> {
    found: Vec<(&'static str, Option<&'a str>)>,
    positionals: Vec<&'a str>,
}

impl<'a> Flags<'a> {
    /// Parses `args` against `spec` (`(name, takes_value)` pairs),
    /// rejecting unknown flags and flags with a missing value.
    pub fn parse(args: &'a [String], spec: &[(&'static str, bool)]) -> Result<Self, String> {
        let mut found = Vec::new();
        let mut positionals = Vec::new();
        let mut iter = args.iter();
        while let Some(a) = iter.next() {
            // Flags start with `-` followed by a non-digit, so a negative
            // number still reads as a value / positional.
            let is_flag = a.len() > 1
                && a.starts_with('-')
                && !a[1..].starts_with(|c: char| c.is_ascii_digit());
            if !is_flag {
                positionals.push(a.as_str());
                continue;
            }
            match spec.iter().find(|(name, _)| *name == a.as_str()) {
                None => {
                    let known: Vec<&str> = spec.iter().map(|(n, _)| *n).collect();
                    return Err(format!(
                        "unknown flag `{a}` (expected one of: {})",
                        known.join(", ")
                    ));
                }
                Some(&(name, false)) => found.push((name, None)),
                Some(&(name, true)) => {
                    let v = iter
                        .next()
                        .ok_or_else(|| format!("missing value after {name}"))?;
                    found.push((name, Some(v.as_str())));
                }
            }
        }
        Ok(Self { found, positionals })
    }

    /// The value of `name`, if the flag was given with one.
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.found
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    /// Whether `name` was given at all.
    pub fn has(&self, name: &str) -> bool {
        self.found.iter().any(|(n, _)| *n == name)
    }

    /// The value of `name`, or an error naming the missing flag.
    pub fn require(&self, name: &str) -> Result<&'a str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing {name} <value>"))
    }

    /// The first positional argument, or an error naming what it should
    /// have been (e.g. `"graph file"`).
    pub fn positional(&self, what: &str) -> Result<&'a str, String> {
        self.positionals
            .first()
            .copied()
            .ok_or_else(|| format!("missing {what}"))
    }
}

/// Parses a numeric flag value, naming the flag in the error.
pub fn parse_num<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| format!("invalid {what} `{value}`: {e}"))
}

/// Opens a file for reading, naming the path in the error.
pub fn open_file(path: &str) -> Result<File, String> {
    File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))
}

/// Creates (truncating) a file for writing, naming the path in the error.
pub fn create_file(path: &str) -> Result<File, String> {
    File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))
}

/// Reads a DIMACS `.gr` graph, naming the path in parse errors.
pub fn load_graph(path: &str) -> Result<Graph, String> {
    dimacs::read_gr(BufReader::new(open_file(path)?))
        .map_err(|e| format!("cannot parse DIMACS graph `{path}`: {e}"))
}

/// Loads a preprocessed instance artifact, sniffing the format by magic
/// bytes: binary `.phast` stores load through `phast-store` with full
/// integrity checking (and may bundle the contraction hierarchy);
/// anything else is treated as a legacy JSON artifact and structurally
/// re-validated. Either way a damaged file is a clean error, not a panic.
pub fn load_instance(path: &str) -> Result<(Phast, Option<Hierarchy>), String> {
    if phast_store::is_store_file(Path::new(path)) {
        phast_store::read_instance(Path::new(path))
            .map_err(|e| format!("cannot load artifact `{path}`: {e}"))
    } else {
        let p: Phast = serde_json::from_reader(BufReader::new(open_file(path)?))
            .map_err(|e| format!("cannot parse artifact `{path}`: {e}"))?;
        p.validate()
            .map_err(|e| format!("corrupt artifact `{path}`: {e}"))?;
        Ok((p, None))
    }
}

/// Checks a vertex id against the graph size, naming the flag on failure.
pub fn check_vertex(v: u32, n: usize, what: &str) -> Result<(), String> {
    if (v as usize) < n {
        Ok(())
    } else {
        Err(format!("{what} {v} out of range (graph has {n} vertices)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let a = args(&["--sorce", "3"]);
        let err = Flags::parse(&a, &[("--source", true)]).unwrap_err();
        assert!(err.contains("--sorce"), "{err}");
        assert!(err.contains("--source"), "{err}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let a = args(&["--source"]);
        let err = Flags::parse(&a, &[("--source", true)]).unwrap_err();
        assert!(err.contains("--source"), "{err}");
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = args(&["--shift", "-3", "input.gr"]);
        let f = Flags::parse(&a, &[("--shift", true)]).unwrap();
        assert_eq!(f.get("--shift"), Some("-3"));
        assert_eq!(f.positional("graph file").unwrap(), "input.gr");
    }

    #[test]
    fn parse_num_names_the_flag() {
        let err = parse_num::<u32>("abc", "--source").unwrap_err();
        assert!(err.contains("--source") && err.contains("abc"), "{err}");
    }

    #[test]
    fn check_vertex_names_flag_and_bound() {
        assert!(check_vertex(3, 4, "--from").is_ok());
        let err = check_vertex(4, 4, "--from").unwrap_err();
        assert!(err.contains("--from") && err.contains('4'), "{err}");
    }
}
