//! The memory-bandwidth lower-bound test of Section VIII-B.
//!
//! "To determine the memory bandwidth of the system, we sequentially and
//! independently read from all arrays (`first`, `arclist`, and the distance
//! array) and then write a value to each entry of the distance array. [...]
//! PHAST is only 2.6 times slower than this." A second, harder bound
//! traverses the graph exactly as PHAST does but only sums arc lengths —
//! isolating the cost of the irregular reads of `d(u)`.

use phast_core::Phast;
use phast_graph::Weight;
use std::time::Duration;

/// Results of the two bounds, for one pass over the sweep data.
#[derive(Clone, Copy, Debug)]
pub struct LowerBound {
    /// Pure sequential scan of `first` + `arclist` + read/write of the
    /// distance array.
    pub sequential_scan: Duration,
    /// PHAST-shaped traversal storing the sum of incoming arc lengths
    /// (everything but the `d(u)` gather).
    pub traversal_sum: Duration,
    /// Bytes touched by the sequential scan.
    pub bytes: usize,
}

impl LowerBound {
    /// Effective bandwidth of the sequential scan in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bytes as f64 / self.sequential_scan.as_secs_f64() / 1e9
    }
}

/// Runs both bounds over the instance's sweep arrays.
pub fn measure(p: &Phast, dist: &mut [Weight]) -> LowerBound {
    let first = p.down().first();
    let arcs = p.down().arcs();
    assert_eq!(dist.len(), p.num_vertices());

    // Bound 1: sequential, independent scans.
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    for &f in first {
        acc = acc.wrapping_add(f as u64);
    }
    for a in arcs {
        acc = acc.wrapping_add(a.tail as u64).wrapping_add(a.weight as u64);
    }
    for d in dist.iter() {
        acc = acc.wrapping_add(*d as u64);
    }
    for d in dist.iter_mut() {
        *d = acc as u32;
    }
    let sequential_scan = start.elapsed();
    std::hint::black_box(acc);

    // Bound 2: the PHAST loop structure, but d(v) = sum of incoming arc
    // lengths (no dependence on d(u), so no irregular reads).
    let start = std::time::Instant::now();
    for v in 0..dist.len() {
        let mut sum = 0u32;
        for a in &arcs[first[v] as usize..first[v + 1] as usize] {
            sum = sum.wrapping_add(a.weight);
        }
        dist[v] = sum;
    }
    let traversal_sum = start.elapsed();
    std::hint::black_box(&dist);

    LowerBound {
        sequential_scan,
        traversal_sum,
        bytes: std::mem::size_of_val(first)
            + std::mem::size_of_val(arcs)
            + 2 * std::mem::size_of_val(dist),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phast_graph::gen::{Metric, RoadNetworkConfig};

    #[test]
    fn bounds_are_positive_and_ordered_sanely() {
        let net = RoadNetworkConfig::new(40, 40, 3, Metric::TravelTime).build();
        let p = Phast::preprocess(&net.graph);
        let mut dist = vec![0u32; p.num_vertices()];
        let lb = measure(&p, &mut dist);
        assert!(lb.sequential_scan > Duration::ZERO);
        assert!(lb.traversal_sum > Duration::ZERO);
        assert!(lb.bytes > 0);
        assert!(lb.bandwidth_gbps() > 0.0);
    }
}
