//! Host machine inspection (Table IV).
//!
//! The paper lists five machines (M2-1 … M4-12). We have whatever machine
//! the harness runs on, so Table IV is regenerated as: one row per *real*
//! host (this machine), plus one row per *simulated* GPU profile.

/// A machine-description row. Serializable: the perf-regression artifact
/// (`BENCH_*.json`) embeds it as the host fingerprint, so a baseline from
/// a different machine is recognizable instead of silently compared.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HostInfo {
    /// Host name / CPU model.
    pub cpu_model: String,
    /// Physical/logical core count visible to the process.
    pub cores: usize,
    /// Clock in GHz (best-effort from cpuinfo).
    pub clock_ghz: f64,
    /// Total RAM in GiB.
    pub ram_gib: f64,
    /// SIMD features relevant to PHAST.
    pub simd: Vec<String>,
}

impl HostInfo {
    /// Inspects the current host via `/proc` (Linux) with safe fallbacks.
    pub fn detect() -> Self {
        let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let cpu_model = cpuinfo
            .lines()
            .find(|l| l.starts_with("model name"))
            .and_then(|l| l.split(':').nth(1))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown CPU".into());
        let clock_ghz = cpuinfo
            .lines()
            .find(|l| l.starts_with("cpu MHz"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|s| s.trim().parse::<f64>().ok())
            .map(|mhz| mhz / 1000.0)
            .unwrap_or(0.0);
        let meminfo = std::fs::read_to_string("/proc/meminfo").unwrap_or_default();
        let ram_gib = meminfo
            .lines()
            .find(|l| l.starts_with("MemTotal"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse::<f64>().ok())
            .map(|kb| kb / 1024.0 / 1024.0)
            .unwrap_or(0.0);
        let mut simd = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            for (name, have) in [
                ("sse4.1", is_x86_feature_detected!("sse4.1")),
                ("avx2", is_x86_feature_detected!("avx2")),
                ("avx512f", is_x86_feature_detected!("avx512f")),
            ] {
                if have {
                    simd.push(name.to_string());
                }
            }
        }
        Self {
            cpu_model,
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            clock_ghz,
            ram_gib,
            simd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_well_formed() {
        let h = HostInfo::detect();
        assert!(h.cores >= 1);
        assert!(!h.cpu_model.is_empty());
        // RAM may be unreadable in odd sandboxes, but never negative.
        assert!(h.ram_gib >= 0.0);
    }
}
