//! Regenerates every table and figure of the PHAST paper.
//!
//! ```text
//! cargo run --release -p phast-bench --bin experiments -- all
//! cargo run --release -p phast-bench --bin experiments -- tab1 tab3
//! PHAST_SCALE=1000000 cargo run --release -p phast-bench --bin experiments -- tab2
//! ```
//!
//! Options: `--sources N` (trees measured per data point, default 20),
//! `--quick` (tiny instance + few sources, for CI smoke tests),
//! `--stats` (observability report of the setup preprocessing and one
//! sample query; counters need the `obs-counters` cargo feature).
//! `EXPERIMENTS.md` records the measured-vs-paper comparison.

use phast_bench::report::{fmt_days, fmt_duration, Table};
use phast_bench::{energy, hostinfo, lower_bound, time_per, InstanceConfig};
use phast_core::simd::SimdLevel;
use phast_core::{par_multi_trees, Phast, PhastBuilder, SweepOrder};
use phast_dijkstra::bfs::bfs;
use phast_dijkstra::dijkstra::Dijkstra;
use phast_gpu::{DeviceProfile, Gphast};
use phast_graph::dfs::dfs_layout;
use phast_graph::gen::Metric;
use phast_graph::reorder::relabel_graph;
use phast_graph::{Graph, Permutation, Vertex};
use phast_pq::{DialQueue, FourHeap, IndexedBinaryHeap, RadixHeap, TwoLevelBuckets};
use std::time::Duration;

struct Opts {
    sources: usize,
    quick: bool,
    stats: bool,
}

fn main() {
    let mut experiments: Vec<String> = Vec::new();
    let mut opts = Opts {
        sources: 20,
        quick: false,
        stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sources" => {
                opts.sources = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sources needs a number");
            }
            "--quick" => opts.quick = true,
            "--stats" => opts.stats = true,
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        eprintln!(
            "usage: experiments [--sources N] [--quick] [--stats] \
             <fig1|tab1|...|tab7|lb|ablations|graphclass|all>..."
        );
        std::process::exit(2);
    }
    if opts.quick {
        opts.sources = opts.sources.min(4);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "fig1", "tab1", "tab2", "tab3", "tab4", "tab5", "tab5sim", "tab6", "tab7", "lb",
            "ablations", "graphclass",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let ctx = Context::new(&opts);
    if opts.stats {
        obs_report(&ctx);
    }
    for e in &experiments {
        match e.as_str() {
            "fig1" => fig1(&ctx),
            "tab1" => tab1(&ctx, &opts),
            "tab2" => tab2(&ctx, &opts),
            "tab3" => tab3(&ctx, &opts),
            "tab4" => tab4(),
            "tab5" => tab5(&ctx, &opts),
            "tab5sim" => tab5sim(),
            "graphclass" => graphclass(&opts),
            "tab6" => tab6(&ctx, &opts),
            "tab7" => tab7(&opts),
            "lb" => lb(&ctx),
            "ablations" => ablations(&ctx, &opts),
            other => eprintln!("unknown experiment '{other}' (skipped)"),
        }
    }
}

/// `--stats`: observability report of the setup's CH preprocessing plus
/// one sample tree query (see DESIGN.md "Observability"). The gated
/// counters are nonzero only in `obs-counters` builds.
fn obs_report(ctx: &Context) {
    let c = phast_obs::prep::counters();
    let mut r = phast_obs::Report::new("setup: CH preprocessing");
    r.push_count("shortcuts_added", c.shortcuts_added)
        .push_count("witness_searches", c.witness_searches);
    phast_bench::report::report_to_table(&r).print();
    let mut e = ctx.phast.engine();
    e.distances_sweep(0);
    let qr = e.stats().report("sample tree query (source 0)");
    phast_bench::report::report_to_table(&qr).print();
}

/// Shared state: the default Europe-like instance in DFS layout with its
/// PHAST preprocessing (used by most experiments).
struct Context {
    graph: Graph,
    phast: Phast,
    n: usize,
    name: String,
}

impl Context {
    fn new(opts: &Opts) -> Self {
        let mut cfg = InstanceConfig::default_europe();
        if opts.quick {
            cfg = cfg.with_vertices(10_000);
        }
        let inst = cfg.build();
        eprintln!(
            "[setup] instance {}: {} vertices, {} arcs",
            inst.name,
            inst.network.num_vertices(),
            inst.network.num_arcs()
        );
        // All headline numbers use the DFS layout (Section II-A).
        let graph = relabel_graph(&inst.network.graph, &dfs_layout(&inst.network.graph, 0));
        let (phast, prep) = phast_bench::time_once(|| Phast::preprocess(&graph));
        eprintln!(
            "[setup] CH preprocessing: {} ({} levels, {} shortcuts)",
            fmt_duration(prep),
            phast.num_levels(),
            phast.num_shortcuts()
        );
        let n = graph.num_vertices();
        Self {
            graph,
            phast,
            n,
            name: inst.name,
        }
    }

    fn sources(&self, count: usize) -> Vec<Vertex> {
        // Deterministic spread over the vertex range.
        let stride = (self.n / count.max(1)).max(1);
        (0..self.n as Vertex)
            .step_by(stride)
            .take(count)
            .collect()
    }
}

/// Figure 1: vertices per level.
fn fig1(ctx: &Context) {
    let hist = ctx.phast.level_histogram();
    let n = ctx.n;
    let mut t = Table::new(
        format!("Figure 1: vertices per level ({})", ctx.name),
        &["level", "vertices", "fraction"],
    );
    for (l, &c) in hist.iter().enumerate().take(15) {
        t.row(&[
            l.to_string(),
            c.to_string(),
            format!("{:.2}%", 100.0 * c as f64 / n as f64),
        ]);
    }
    if hist.len() > 15 {
        let rest: usize = hist[15..].iter().sum();
        t.row(&[
            format!("15..{}", hist.len() - 1),
            rest.to_string(),
            format!("{:.2}%", 100.0 * rest as f64 / n as f64),
        ]);
    }
    t.print();
    let above20: usize = hist.iter().skip(20).sum();
    println!(
        "levels: {}   level-0 share: {:.1}%   vertices above level 20: {}",
        hist.len(),
        100.0 * hist[0] as f64 / n as f64,
        above20
    );
    println!(
        "paper shape: ~140 levels, half of all vertices in level 0, only\n\
         ~30k of 18M above level 20 (scaled-down instances have fewer levels).\n"
    );
}

/// Table I: single-tree performance across layouts and algorithms.
fn tab1(ctx: &Context, opts: &Opts) {
    let base = &ctx.graph; // already DFS layout
    let layouts: Vec<(&str, Permutation)> = vec![
        ("random", Permutation::random(ctx.n, 42)),
        // "input" relative to the DFS base: the generator's row-major grid
        // order, recovered by inverting the DFS layout is not available
        // here, so "input" is the identity on the generated order.
        ("input", Permutation::identity(ctx.n)),
        ("dfs", dfs_layout(base, 0)),
    ];
    let sources = ctx.sources(opts.sources.min(10));
    let mut t = Table::new(
        "Table I: single-tree time per algorithm and layout [ms]",
        &["algorithm", "details", "random", "input", "dfs"],
    );
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Dijkstra".into(), "binary heap".into()],
        vec!["Dijkstra".into(), "Dial".into()],
        vec!["Dijkstra".into(), "smart queue (2-level)".into()],
        vec!["Dijkstra".into(), "radix heap".into()],
        vec!["BFS".into(), "-".into()],
        vec!["PHAST".into(), "original ordering".into()],
        vec!["PHAST".into(), "reordered by level".into()],
        vec!["PHAST".into(), "reordered + all cores".into()],
    ];
    for (_, perm) in &layouts {
        let g = relabel_graph(base, perm);
        let srcs: Vec<Vertex> = sources.iter().map(|&s| perm.map(s)).collect();
        let fwd = g.forward();

        let mut d_bin = Dijkstra::<IndexedBinaryHeap>::new(fwd);
        rows[0].push(format!(
            "{:.2}",
            time_per(srcs.len(), |i| {
                d_bin.run_in_place(srcs[i]);
            })
            .ms()
        ));
        let mut d_dial = Dijkstra::<DialQueue>::new(fwd);
        rows[1].push(format!(
            "{:.2}",
            time_per(srcs.len(), |i| {
                d_dial.run_in_place(srcs[i]);
            })
            .ms()
        ));
        let mut d_mlb = Dijkstra::<TwoLevelBuckets>::new(fwd);
        rows[2].push(format!(
            "{:.2}",
            time_per(srcs.len(), |i| {
                d_mlb.run_in_place(srcs[i]);
            })
            .ms()
        ));
        let mut d_rad = Dijkstra::<RadixHeap>::new(fwd);
        rows[3].push(format!(
            "{:.2}",
            time_per(srcs.len(), |i| {
                d_rad.run_in_place(srcs[i]);
            })
            .ms()
        ));
        rows[4].push(format!(
            "{:.2}",
            time_per(srcs.len(), |i| {
                bfs(fwd, srcs[i]);
            })
            .ms()
        ));

        // PHAST variants: preprocessing per layout (the within-level order
        // inherits the layout, which is the effect Table I measures).
        let p_rank = PhastBuilder::new().order(SweepOrder::ByRank).build(&g);
        let mut e = p_rank.engine();
        rows[5].push(format!(
            "{:.2}",
            time_per(srcs.len(), |i| {
                e.distances_sweep(srcs[i]);
            })
            .ms()
        ));
        let p_level = PhastBuilder::new().order(SweepOrder::ByLevel).build(&g);
        let mut e = p_level.engine();
        rows[6].push(format!(
            "{:.2}",
            time_per(srcs.len(), |i| {
                e.distances_sweep(srcs[i]);
            })
            .ms()
        ));
        let mut e = p_level.engine();
        rows[7].push(format!(
            "{:.2}",
            time_per(srcs.len(), |i| {
                e.distances_par_sweep(srcs[i]);
            })
            .ms()
        ));
    }
    for r in rows {
        t.row(&r);
    }
    t.print();
    println!(
        "paper shape: layout matters for every algorithm (random >> dfs);\n\
         level reordering gives PHAST its big jump (2.0 s -> 172 ms on Europe);\n\
         PHAST beats Dijkstra in every column.\n"
    );
}

/// Table II: multiple trees per sweep × cores × SSE.
fn tab2(ctx: &Context, opts: &Opts) {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let core_counts: Vec<usize> = [1usize, (cores / 2).max(1), cores]
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let header: Vec<String> = std::iter::once("k".to_string())
        .chain(
            core_counts
                .iter()
                .map(|c| format!("{c} core(s) scalar / simd")),
        )
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table II: time per tree, k sources per sweep [ms]",
        &header_refs,
    );
    for k in [4usize, 8, 16] {
        let batches = (opts.sources / k).max(1);
        let sources = ctx.sources(batches * k);
        let mut row = vec![k.to_string()];
        for &c in &core_counts {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(c)
                .build()
                .expect("thread pool");
            let mut cell = String::new();
            for simd in [SimdLevel::Scalar, phast_core::simd::best_simd_for(k)] {
                let (_, elapsed) = pool.install(|| {
                    phast_bench::time_once(|| {
                        phast_core::par_multi_trees_with(
                            &ctx.phast,
                            k,
                            Some(simd),
                            &sources,
                            |_, _| (),
                        )
                    })
                });
                let per_tree = elapsed.as_secs_f64() * 1e3 / sources.len() as f64;
                if !cell.is_empty() {
                    cell.push_str(" / ");
                }
                cell.push_str(&format!("{per_tree:.2}"));
            }
            row.push(cell);
        }
        t.row(&row);
    }
    t.print();
    println!(
        "paper shape: larger k helps (better locality), SSE gives ~2.6x on\n\
         top, cores scale near-linearly until memory bandwidth saturates.\n\
         (this host has {cores} core(s); scaling columns degenerate when 1.)\n"
    );
}

/// Table III: GPHAST time and device memory vs k.
fn tab3(ctx: &Context, opts: &Opts) {
    let mut t = Table::new(
        "Table III: GPHAST (simulated GTX 580) per-tree time and memory",
        &["trees/sweep", "memory [MB]", "time/tree [ms]"],
    );
    for k in [1usize, 2, 4, 8, 16] {
        let mut gp = match Gphast::new(&ctx.phast, DeviceProfile::gtx_580(), k) {
            Ok(gp) => gp,
            Err(e) => {
                t.row(&[k.to_string(), format!("{e}"), "-".into()]);
                continue;
            }
        };
        let batches = (opts.sources / k).max(1);
        let sources = ctx.sources(batches * k);
        let mut total = Duration::ZERO;
        let mut mem = 0usize;
        for b in 0..batches {
            let stats = gp.run(&sources[b * k..(b + 1) * k]);
            total += stats.batch_time;
            mem = stats.device_memory_bytes;
        }
        let per_tree = total.as_secs_f64() * 1e3 / (batches * k) as f64;
        t.row(&[
            k.to_string(),
            format!("{:.1}", mem as f64 / 1e6),
            format!("{per_tree:.3}"),
        ]);
    }
    t.print();
    println!(
        "paper shape: 5.53 ms at k=1 down to 2.21 ms at k=16 on Europe\n\
         (18M vertices); memory grows by one n-sized label array per tree.\n"
    );
}

/// Table IV: machine specifications.
fn tab4() {
    let h = hostinfo::HostInfo::detect();
    let mut t = Table::new(
        "Table IV: machines (this host + simulated GPUs)",
        &["name", "cores/SMs", "clock", "memory", "bandwidth", "notes"],
    );
    t.row(&[
        h.cpu_model.clone(),
        h.cores.to_string(),
        format!("{:.2} GHz", h.clock_ghz),
        format!("{:.1} GiB", h.ram_gib),
        "-".into(),
        format!("simd: {}", h.simd.join("+")),
    ]);
    for p in [DeviceProfile::gtx_580(), DeviceProfile::gtx_480()] {
        t.row(&[
            p.name.clone(),
            p.num_sms.to_string(),
            format!("{:.0} MHz", p.core_clock_mhz),
            format!("{:.1} GiB", p.memory_bytes as f64 / (1 << 30) as f64),
            format!("{:.1} GB/s", p.mem_bandwidth_gbps),
            "simulated".into(),
        ]);
    }
    t.print();
}

/// Table V: architecture impact — Dijkstra vs PHAST, thread scaling,
/// free vs pinned.
fn tab5(ctx: &Context, opts: &Opts) {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let sources = ctx.sources(opts.sources);
    let fwd = ctx.graph.forward();

    let mut t = Table::new(
        "Table V: Dijkstra vs PHAST on this host [ms/tree]",
        &["config", "Dijkstra", "PHAST", "speedup"],
    );

    // Single thread.
    let mut dij = Dijkstra::<DialQueue>::new(fwd);
    let d1 = time_per(sources.len(), |i| {
        dij.run_in_place(sources[i]);
    });
    let mut e = ctx.phast.engine();
    let p1 = time_per(sources.len(), |i| {
        e.distances_sweep(sources[i]);
    });
    t.row(&[
        "single thread".into(),
        format!("{:.2}", d1.ms()),
        format!("{:.2}", p1.ms()),
        format!("{:.1}x", d1.ms() / p1.ms()),
    ]);

    // One tree per core, free vs pinned.
    for pinned in [false, true] {
        let pool = make_pool(cores, pinned);
        let dm = pool.install(|| {
            phast_bench::time_once(|| {
                phast_dijkstra::many_trees::<FourHeap, _, _>(fwd, &sources, |_, d, _| d[0])
            })
            .1
        });
        let pm = pool.install(|| {
            phast_bench::time_once(|| {
                phast_core::par_trees(&ctx.phast, &sources, |_, e| e.labels()[0])
            })
            .1
        });
        let dms = dm.as_secs_f64() * 1e3 / sources.len() as f64;
        let pms = pm.as_secs_f64() * 1e3 / sources.len() as f64;
        t.row(&[
            format!(
                "1 tree/core ({})",
                if pinned { "pinned" } else { "free" }
            ),
            format!("{dms:.2}"),
            format!("{pms:.2}"),
            format!("{:.1}x", dms / pms),
        ]);
    }

    // 16 trees per core per sweep.
    let k = 16;
    let batches = (sources.len() / k).max(1);
    let srcs = ctx.sources(batches * k);
    for pinned in [false, true] {
        let pool = make_pool(cores, pinned);
        let pm = pool.install(|| {
            phast_bench::time_once(|| {
                par_multi_trees(&ctx.phast, k, &srcs, |_, _| ());
            })
            .1
        });
        let pms = pm.as_secs_f64() * 1e3 / srcs.len() as f64;
        t.row(&[
            format!(
                "16 trees/core ({})",
                if pinned { "pinned" } else { "free" }
            ),
            "-".into(),
            format!("{pms:.2}"),
            String::new(),
        ]);
    }
    t.print();
    println!(
        "paper shape: PHAST ~19-21x Dijkstra single-threaded on every\n\
         machine; pinning matters on NUMA systems (this host has {cores}\n\
         core(s), so scaling rows degenerate on single-core machines).\n"
    );
}

/// The paper's scope caveat (Sections I-III): "PHAST only works well on
/// certain classes of graphs, namely those with low highway dimension.
/// Fortunately, however, road networks are among them." Contrast a road
/// network with a random digraph of similar size: contraction degenerates
/// (many shortcuts, deep or dense hierarchies, large upward searches) and
/// the PHAST advantage collapses.
fn graphclass(opts: &Opts) {
    use phast_ch::UpwardSearch;
    // Random-graph contraction is drastically superquadratic (that is the
    // point of this experiment), so the instance stays small.
    let n = if opts.quick { 800 } else { 2_000 };
    let road = InstanceConfig::default_europe().with_vertices(n).build();
    let road_g = road.network.graph.clone();
    let (disk_g, _) = phast_graph::gen::UnitDiskConfig::new(n, 7).build();
    let rand_g = phast_graph::gen::random::gnm_scc(n, n * 3, 1000, 7);
    let mut t = Table::new(
        "Graph class: road network vs random digraph (similar size)",
        &[
            "graph",
            "n",
            "m",
            "prep [s]",
            "shortcuts",
            "levels",
            "avg up-search",
            "Dijkstra [ms]",
            "PHAST [ms]",
        ],
    );
    for (name, g) in [("road", &road_g), ("unit disk", &disk_g), ("random", &rand_g)] {
        let (p, prep) = phast_bench::time_once(|| Phast::preprocess(g));
        let h = phast_ch::contract_graph(g, &phast_ch::ContractionConfig::default());
        let mut up = UpwardSearch::new(&h);
        let nn = g.num_vertices();
        let sources: Vec<Vertex> = (0..nn as Vertex).step_by((nn / 8).max(1)).collect();
        let avg_up: usize = sources.iter().map(|&s| up.run(s).len()).sum::<usize>()
            / sources.len();
        let mut dij = Dijkstra::<DialQueue>::new(g.forward());
        let d = time_per(sources.len(), |i| {
            dij.run_in_place(sources[i]);
        });
        let mut e = p.engine();
        let ph = time_per(sources.len(), |i| {
            e.distances_sweep(sources[i]);
        });
        t.row(&[
            name.into(),
            nn.to_string(),
            g.num_arcs().to_string(),
            format!("{:.2}", prep.as_secs_f64()),
            p.num_shortcuts().to_string(),
            p.num_levels().to_string(),
            avg_up.to_string(),
            format!("{:.2}", d.ms()),
            format!("{:.2}", ph.ms()),
        ]);
    }
    t.print();
    println!(
        "paper shape: on low-highway-dimension graphs contraction stays
         sparse and upward searches tiny; on random graphs shortcuts and
         search spaces blow up and the PHAST advantage collapses.
"
    );
}

/// Table V regenerated across the paper's five machines via the analytic
/// model of `phast-machine` (see DESIGN.md's substitution table — the
/// machines themselves are not available, so this is model output
/// calibrated on M1-4's published anchors, at the paper's 18M-vertex
/// Europe workload).
fn tab5sim() {
    use phast_machine::{predict_dijkstra, predict_phast, MachineProfile, Placement, WorkloadSize};
    let w = WorkloadSize::europe();
    let mut t = Table::new(
        "Table V (simulated machines, paper-scale Europe) [ms/tree]",
        &[
            "machine",
            "Dijkstra 1t",
            "PHAST 1t",
            "ratio",
            "PHAST 1/core free",
            "PHAST 1/core pinned",
            "PHAST 16/core pinned",
            "energy 16/core [J/tree]",
        ],
    );
    for m in MachineProfile::all() {
        let d1 = predict_dijkstra(&m, &w, 1, Placement::Pinned).per_tree;
        let p1 = predict_phast(&m, &w, 1, 1, Placement::Pinned).per_tree;
        let pfree = predict_phast(&m, &w, m.cores, 1, Placement::Free).per_tree;
        let ppin = predict_phast(&m, &w, m.cores, 1, Placement::Pinned).per_tree;
        let p16 = predict_phast(&m, &w, m.cores, 16, Placement::Pinned).per_tree;
        t.row(&[
            format!("{} ({} cores, {} nodes)", m.name, m.cores, m.numa_nodes),
            format!("{:.0}", d1.as_secs_f64() * 1e3),
            format!("{:.0}", p1.as_secs_f64() * 1e3),
            format!("{:.1}x", d1.as_secs_f64() / p1.as_secs_f64()),
            format!("{:.1}", pfree.as_secs_f64() * 1e3),
            format!("{:.1}", ppin.as_secs_f64() * 1e3),
            format!("{:.2}", p16.as_secs_f64() * 1e3),
            if m.system_watts > 0.0 {
                format!("{:.2}", m.system_watts * p16.as_secs_f64())
            } else {
                "-".into()
            },
        ]);
    }
    t.print();
    println!(
        "model calibrated on M1-4's published 172 ms / 2810 ms / 37.1 ms
         anchors; paper shape: PHAST ~19x Dijkstra single-threaded on every
         machine, pinning decisive on many-node machines (M4-12), all-cores
         k=16 reaching single-digit ms on the big servers.
"
    );
}

fn make_pool(threads: usize, pinned: bool) -> rayon::ThreadPool {
    let mut b = rayon::ThreadPoolBuilder::new().num_threads(threads);
    if pinned {
        b = b.start_handler(pin_current_thread);
    }
    b.build().expect("thread pool")
}

/// Best-effort thread pinning via sched_setaffinity.
fn pin_current_thread(idx: usize) {
    #[cfg(target_os = "linux")]
    // SAFETY: zeroed cpu_set_t is a valid empty set; CPU_SET/sched_setaffinity
    // are called with a properly sized set for this thread only.
    unsafe {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(idx % cores, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
    }
    #[cfg(not(target_os = "linux"))]
    let _ = idx;
}

/// Table VI: Dijkstra vs PHAST vs GPHAST — time, energy, APSP projection.
fn tab6(ctx: &Context, opts: &Opts) {
    let n = ctx.n as u64;
    let sources = ctx.sources(opts.sources);
    let fwd = ctx.graph.forward();
    let mut t = Table::new(
        "Table VI: per-tree and all-pairs (n trees) projections",
        &[
            "algorithm",
            "device",
            "mem [GB]",
            "time/tree [ms]",
            "energy/tree [J]",
            "n trees [d:hh:mm]",
            "n trees [MJ]",
        ],
    );
    let mut push = |name: &str, device: &str, mem_gb: f64, per_tree: Duration, watts: f64| {
        let all = per_tree * n as u32;
        t.row(&[
            name.into(),
            device.into(),
            format!("{mem_gb:.2}"),
            format!("{:.2}", per_tree.as_secs_f64() * 1e3),
            format!("{:.1}", watts * per_tree.as_secs_f64()),
            fmt_days(all),
            format!("{:.1}", watts * all.as_secs_f64() / 1e6),
        ]);
    };

    // Dijkstra, all cores, one tree per core.
    let host_w = energy::host_model().watts;
    let (_, dt) = phast_bench::time_once(|| {
        phast_dijkstra::many_trees::<FourHeap, _, _>(fwd, &sources, |_, d, _| d[0])
    });
    push(
        "Dijkstra",
        "host CPU",
        (ctx.graph.memory_bytes() + 8 * ctx.n) as f64 / 1e9,
        dt / sources.len() as u32,
        host_w,
    );

    // PHAST, all cores, 16 per sweep.
    let k = 16;
    let batches = (sources.len() / k).max(1);
    let srcs = ctx.sources(batches * k);
    let (_, pt) = phast_bench::time_once(|| {
        par_multi_trees(&ctx.phast, k, &srcs, |_, _| ());
    });
    push(
        "PHAST",
        "host CPU",
        (ctx.phast.memory_bytes() + 4 * ctx.n * k) as f64 / 1e9,
        pt / srcs.len() as u32,
        host_w,
    );

    // GPHAST on both simulated cards.
    for (profile, is580) in [(DeviceProfile::gtx_580(), true), (DeviceProfile::gtx_480(), false)] {
        let name = profile.name.clone();
        let watts = energy::gpu_model(is580).watts;
        if let Ok(mut gp) = Gphast::new(&ctx.phast, profile, k) {
            let mut total = Duration::ZERO;
            for b in 0..batches {
                total += gp.run(&srcs[b * k..(b + 1) * k]).batch_time;
            }
            push(
                "GPHAST",
                &name,
                gp.device().allocated_bytes() as f64 / 1e9,
                total / srcs.len() as u32,
                watts,
            );
        }
    }
    // The paper's two-card projection ("with two cards, GPHAST would be
    // twice as fast"): two simulated GTX 580s, sources dealt round-robin.
    if let Ok(mut bank) = phast_gpu::MultiGpu::new(&ctx.phast, DeviceProfile::gtx_580(), 2, k) {
        // Twice the sources so both cards get full rounds.
        let srcs2 = ctx.sources(2 * batches * k);
        let stats = bank.run(&srcs2);
        push(
            "GPHAST 2x",
            "2x GTX 580 (simulated)",
            2.0 * (ctx.phast.down().memory_bytes() + ctx.n * (4 * k + 5)) as f64 / 1e9,
            stats.time_per_tree,
            energy::gpu_model(true).watts + 110.0, // second card under load
        );
    }
    t.print();
    println!(
        "paper shape: GPHAST fastest and most energy-efficient per tree;\n\
         PHAST on a big server approaches GPHAST's time but at ~3x the\n\
         energy; Dijkstra is orders of magnitude behind on both; a second\n\
         card halves the per-tree time (perfect scaling, Section VIII-F).\n\
         (energy uses the paper's published watt figures as a model.)\n"
    );
}

/// Table VII: other inputs — Europe/USA × travel time/distance.
fn tab7(opts: &Opts) {
    let mut t = Table::new(
        "Table VII: per-tree times on other inputs [ms]",
        &[
            "instance", "n", "m", "levels", "Dijkstra", "PHAST", "GPHAST(580)",
        ],
    );
    let base = if opts.quick { 6_000 } else { 60_000 };
    let configs = [
        InstanceConfig::default_europe().with_vertices(base),
        InstanceConfig::default_europe()
            .with_vertices(base)
            .with_metric(Metric::TravelDistance),
        InstanceConfig::default_usa().with_vertices(base * 4 / 3),
        InstanceConfig::default_usa()
            .with_vertices(base * 4 / 3)
            .with_metric(Metric::TravelDistance),
    ];
    for cfg in configs {
        let inst = cfg.build();
        let g = relabel_graph(&inst.network.graph, &dfs_layout(&inst.network.graph, 0));
        let p = Phast::preprocess(&g);
        let n = g.num_vertices();
        let sources: Vec<Vertex> = (0..n as Vertex)
            .step_by((n / opts.sources.clamp(1, 8)).max(1))
            .take(opts.sources.min(8))
            .collect();
        let mut dij = Dijkstra::<DialQueue>::new(g.forward());
        let d = time_per(sources.len(), |i| {
            dij.run_in_place(sources[i]);
        });
        let mut e = p.engine();
        let ph = time_per(sources.len(), |i| {
            e.distances_sweep(sources[i]);
        });
        let gp_ms = match Gphast::new(&p, DeviceProfile::gtx_580(), 1) {
            Ok(mut gp) => {
                let mut total = Duration::ZERO;
                for &s in &sources {
                    total += gp.run(&[s]).batch_time;
                }
                format!(
                    "{:.3}",
                    total.as_secs_f64() * 1e3 / sources.len() as f64
                )
            }
            Err(_) => "-".into(),
        };
        t.row(&[
            inst.name.clone(),
            n.to_string(),
            g.num_arcs().to_string(),
            p.num_levels().to_string(),
            format!("{:.2}", d.ms()),
            format!("{:.2}", ph.ms()),
            gp_ms,
        ]);
    }
    t.print();
    println!(
        "paper shape: distance metric gives deeper hierarchies (410 vs 140\n\
         levels on Europe) and slower absolute times; USA is larger and\n\
         slower than Europe; the ranking Dijkstra > PHAST > GPHAST holds\n\
         everywhere.\n"
    );
}

/// Section VIII-B's lower-bound test.
fn lb(ctx: &Context) {
    let mut dist = vec![0u32; ctx.n];
    let lbr = lower_bound::measure(&ctx.phast, &mut dist);
    let mut e = ctx.phast.engine();
    let srcs = ctx.sources(5);
    let ph = time_per(srcs.len(), |i| {
        e.distances_sweep(srcs[i]);
    });
    let mut t = Table::new(
        "Lower bound (Section VIII-B)",
        &["measurement", "time [ms]", "vs PHAST"],
    );
    let phms = ph.ms();
    t.row(&[
        "sequential array scan".into(),
        format!("{:.2}", lbr.sequential_scan.as_secs_f64() * 1e3),
        format!("{:.2}x", phms / (lbr.sequential_scan.as_secs_f64() * 1e3)),
    ]);
    t.row(&[
        "graph traversal (sum of arc lengths)".into(),
        format!("{:.2}", lbr.traversal_sum.as_secs_f64() * 1e3),
        format!("{:.2}x", phms / (lbr.traversal_sum.as_secs_f64() * 1e3)),
    ]);
    t.row(&["PHAST sweep".into(), format!("{phms:.2}"), "1.00x".into()]);
    t.print();
    println!(
        "effective scan bandwidth: {:.1} GB/s\n\
         paper shape: PHAST is ~2.6x the pure scan and within ~12% of the\n\
         traversal bound — the d(u) gather is nearly free after reordering.\n",
        lbr.bandwidth_gbps()
    );
}

/// Ablations called out in DESIGN.md: sweep order, SIMD level, witness hop
/// limits.
fn ablations(ctx: &Context, opts: &Opts) {
    let sources = ctx.sources(opts.sources.min(8));

    // (a) Sweep order.
    let mut t = Table::new("Ablation: sweep order", &["order", "time/tree [ms]"]);
    let p_rank = PhastBuilder::new()
        .order(SweepOrder::ByRank)
        .build(&ctx.graph);
    let mut e = p_rank.engine();
    let a = time_per(sources.len(), |i| {
        e.distances_sweep(sources[i]);
    });
    t.row(&["by rank (basic PHAST)".into(), format!("{:.2}", a.ms())]);
    let mut e = ctx.phast.engine();
    let b = time_per(sources.len(), |i| {
        e.distances_sweep(sources[i]);
    });
    t.row(&["by level (reordered)".into(), format!("{:.2}", b.ms())]);
    t.print();

    // (b) SIMD level at k = 16.
    let k = 16;
    let batches = (opts.sources / k).max(1);
    let srcs = ctx.sources(batches * k);
    let mut t = Table::new("Ablation: sweep kernel at k=16", &["kernel", "time/tree [ms]"]);
    for level in [SimdLevel::Scalar, SimdLevel::Sse41, SimdLevel::Avx2] {
        let mut engine = ctx.phast.multi_engine(k);
        engine.force_simd(level);
        if engine.simd_level() != level {
            continue; // CPU lacks the feature
        }
        let timed = time_per(batches, |bi| {
            engine.run(&srcs[bi * k..(bi + 1) * k]);
        });
        t.row(&[
            format!("{level:?}"),
            format!("{:.3}", timed.total.as_secs_f64() * 1e3 / srcs.len() as f64),
        ]);
    }
    t.print();

    // (b2) Combined: k=16 + SIMD + intra-level parallel sweep (the CPU
    // analogue of GPHAST's execution model).
    {
        let mut engine = ctx.phast.multi_engine(k);
        let timed = time_per(batches, |bi| {
            engine.run_par(&srcs[bi * k..(bi + 1) * k]);
        });
        let mut t = Table::new(
            "Ablation: combined k=16 + SIMD + parallel sweep",
            &["config", "time/tree [ms]"],
        );
        t.row(&[
            "k=16 simd + intra-level blocks".into(),
            format!("{:.3}", timed.total.as_secs_f64() * 1e3 / srcs.len() as f64),
        ]);
        t.print();
    }

    // (d) GPHAST vertex ordering: the §VI negative result. Degree sorting
    // within levels removes warp divergence but hurts the locality of the
    // tail-label reads.
    {
        let mut t = Table::new(
            "Ablation: GPHAST vertex order within levels (k=1)",
            &["order", "lane efficiency", "DRAM txns", "time/tree [ms]"],
        );
        let p_degree = PhastBuilder::new()
            .order(SweepOrder::ByLevelThenDegree)
            .build(&ctx.graph);
        for (name, p) in [("by level (paper)", &ctx.phast), ("degree-sorted", &p_degree)] {
            if let Ok(mut gp) = Gphast::new(p, DeviceProfile::gtx_580(), 1) {
                let stats = gp.run(&[sources[0]]);
                t.row(&[
                    name.into(),
                    format!("{:.3}", stats.lane_efficiency),
                    stats.dram_transactions.to_string(),
                    format!("{:.3}", stats.time_per_tree.as_secs_f64() * 1e3),
                ]);
            }
        }
        t.print();
    }

    // (c) Witness hop limits: preprocessing cost vs hierarchy quality.
    // Run on a capped instance: over-restricted witness searches densify
    // the graph superlinearly (the "aggressive" row cost ~10 minutes at
    // 250k vertices), and the effect is equally visible at 50k.
    let abl_graph = if ctx.n > 60_000 {
        let inst = InstanceConfig::default_europe().with_vertices(50_000).build();
        relabel_graph(&inst.network.graph, &dfs_layout(&inst.network.graph, 0))
    } else {
        ctx.graph.clone()
    };
    let abl_n = abl_graph.num_vertices();
    let abl_sources: Vec<Vertex> = (0..abl_n as Vertex)
        .step_by((abl_n / sources.len().max(1)).max(1))
        .take(sources.len())
        .collect();
    let mut t = Table::new(
        format!("Ablation: witness-search hop limits ({abl_n} vertices)"),
        &["stages", "prep [s]", "shortcuts", "levels", "sweep [ms]"],
    );
    for (name, stages) in [
        ("paper (5@5, 10@10)", vec![(5.0, 5), (10.0, 10)]),
        ("aggressive (3@10)", vec![(f64::INFINITY, 3)]),
        ("exact (no limits)", vec![]),
    ] {
        let cfg = phast_ch::ContractionConfig {
            hop_stages: stages,
            ..Default::default()
        };
        let (p, prep) = phast_bench::time_once(|| {
            PhastBuilder::new().ch_config(cfg).build(&abl_graph)
        });
        let mut e = p.engine();
        let sw = time_per(abl_sources.len(), |i| {
            e.distances_sweep(abl_sources[i]);
        });
        t.row(&[
            name.into(),
            format!("{:.2}", prep.as_secs_f64()),
            p.num_shortcuts().to_string(),
            p.num_levels().to_string(),
            format!("{:.2}", sw.ms()),
        ]);
    }
    t.print();
}
