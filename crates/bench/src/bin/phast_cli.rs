//! `phast-cli` — command-line front end for the library.
//!
//! ```text
//! phast-cli generate  --vertices 100000 --metric time --seed 7 -o net.gr --coords net.co
//! phast-cli stats     net.gr
//! phast-cli preprocess net.gr -o net.phast.json [--reverse] [--stats[=json]]
//! phast-cli tree      net.phast.json --source 0 [--top 5] [--stats[=json]]
//! phast-cli query     net.gr --from 0 --to 999 [--path]
//! ```
//!
//! Graphs use the 9th DIMACS Implementation Challenge `.gr`/`.co` formats,
//! so real road networks work directly.
//!
//! `--stats` prints the observability report of the command (a table, or
//! one JSON object with `--stats=json`; see `DESIGN.md` "Observability").
//! The report always includes phase times and the settled count; the
//! remaining counters are nonzero only in builds with the `obs-counters`
//! cargo feature, and the report's `counters_enabled` field says which
//! build produced it.

use phast_core::{Direction, Phast, PhastBuilder};
use phast_graph::dimacs;
use phast_graph::gen::{Metric, RoadNetworkConfig};
use phast_graph::{Graph, INF};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("preprocess") => cmd_preprocess(&args[1..]),
        Some("tree") => cmd_tree(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => {
            eprintln!(
                "usage: phast-cli <generate|stats|preprocess|tree|query> [options]\n\
                 see the module docs (or the README) for the option lists"
            );
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Tiny flag parser: `--name value` pairs plus boolean switches.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }
    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }
    fn require(&self, name: &str) -> Result<&'a str, String> {
        self.get(name).ok_or_else(|| format!("missing {name} <value>"))
    }
    fn positional(&self) -> Option<&'a str> {
        self.args
            .iter()
            .find(|a| !a.starts_with("--"))
            .map(String::as_str)
    }
}

fn load_graph(path: &str) -> Result<Graph, Box<dyn std::error::Error>> {
    Ok(dimacs::read_gr(BufReader::new(File::open(path)?))?)
}

/// The `--stats` switch: `None` = off, `Some(false)` = table,
/// `Some(true)` = JSON (`--stats=json`).
fn stats_mode(args: &[String]) -> Option<bool> {
    if args.iter().any(|a| a == "--stats=json") {
        Some(true)
    } else if args.iter().any(|a| a == "--stats") {
        Some(false)
    } else {
        None
    }
}

fn emit_report(report: &phast_obs::Report, json: bool) -> CliResult {
    if json {
        println!("{}", serde_json::to_string(report)?);
    } else {
        phast_bench::report::report_to_table(report).print();
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let f = Flags { args };
    let n: usize = f.require("--vertices")?.parse()?;
    let metric = match f.get("--metric").unwrap_or("time") {
        "time" => Metric::TravelTime,
        "dist" | "distance" => Metric::TravelDistance,
        other => return Err(format!("unknown metric '{other}'").into()),
    };
    let seed: u64 = f.get("--seed").unwrap_or("42").parse()?;
    let out = f.require("-o")?;
    let usa = f.has("--usa");
    let cfg = if usa {
        RoadNetworkConfig::usa_like(n, seed, metric)
    } else {
        RoadNetworkConfig::europe_like(n, seed, metric)
    };
    let net = cfg.build();
    dimacs::write_gr(BufWriter::new(File::create(out)?), &net.graph)?;
    eprintln!(
        "wrote {out}: {} vertices, {} arcs",
        net.num_vertices(),
        net.num_arcs()
    );
    if let Some(co) = f.get("--coords") {
        dimacs::write_co(BufWriter::new(File::create(co)?), &net.coords)?;
        eprintln!("wrote {co}");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let f = Flags { args };
    let path = f.positional().ok_or("missing graph file")?;
    let g = load_graph(path)?;
    let m = phast_graph::metrics::graph_metrics(&g);
    let scc = phast_graph::components::is_strongly_connected(&g);
    println!("graph        : {path}");
    println!("vertices     : {}", m.n);
    println!("arcs         : {} (avg degree {:.2})", m.m, m.avg_degree);
    println!("max degree   : {}", m.max_degree);
    println!("out-degrees  : {:?} (last bucket = 8+)", m.degree_histogram);
    println!(
        "weights      : {}..{} (mean {:.1})",
        m.min_weight, m.max_weight, m.mean_weight
    );
    println!(
        "arc span     : median |head-tail| = {} (layout locality)",
        m.median_arc_span
    );
    println!("hop diameter : >= {}", m.hop_diameter_lower_bound);
    println!("strongly connected: {scc}");
    Ok(())
}

fn cmd_preprocess(args: &[String]) -> CliResult {
    let f = Flags { args };
    let path = f.positional().ok_or("missing graph file")?;
    let out = f.require("-o")?;
    let g = load_graph(path)?;
    let dir = if f.has("--reverse") {
        Direction::Reverse
    } else {
        Direction::Forward
    };
    let t = std::time::Instant::now();
    let p = PhastBuilder::new().direction(dir).build(&g);
    let elapsed = t.elapsed();
    eprintln!(
        "preprocessed in {elapsed:.2?}: {} levels, {} shortcuts",
        p.num_levels(),
        p.num_shortcuts()
    );
    if let Some(json) = stats_mode(args) {
        let c = phast_obs::prep::counters();
        let mut r = phast_obs::Report::new("phast preprocess");
        r.push_count("vertices", p.num_vertices() as u64)
            .push_count("levels", p.num_levels() as u64)
            .push_count("shortcuts", p.num_shortcuts() as u64)
            .push_count("shortcuts_added", c.shortcuts_added)
            .push_count("witness_searches", c.witness_searches)
            .push_time("preprocess_time", elapsed);
        emit_report(&r, json)?;
    }
    serde_json::to_writer(BufWriter::new(File::create(out)?), &p)?;
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_tree(args: &[String]) -> CliResult {
    let f = Flags { args };
    let path = f.positional().ok_or("missing artifact file")?;
    let source: u32 = f.require("--source")?.parse()?;
    let p: Phast = serde_json::from_reader(BufReader::new(File::open(path)?))?;
    p.validate().map_err(|e| format!("corrupt artifact: {e}"))?;
    let mut engine = p.engine();
    let t = std::time::Instant::now();
    let dist = engine.distances(source);
    eprintln!("tree from {source} in {:.2?}", t.elapsed());
    let reached = dist.iter().filter(|&&d| d < INF).count();
    let ecc = dist.iter().filter(|&&d| d < INF).max().copied().unwrap_or(0);
    println!("reached {reached} of {} vertices; eccentricity {ecc}", dist.len());
    if let Some(json) = stats_mode(args) {
        emit_report(&engine.stats().report("phast tree query"), json)?;
    }
    if let Some(top) = f.get("--top") {
        let top: usize = top.parse()?;
        let mut far: Vec<(u32, u32)> = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d < INF)
            .map(|(v, &d)| (d, v as u32))
            .collect();
        far.sort_unstable_by(|a, b| b.cmp(a));
        for &(d, v) in far.iter().take(top) {
            println!("  vertex {v}: distance {d}");
        }
    }
    if let Some(out) = f.get("--out") {
        let mut w = BufWriter::new(File::create(out)?);
        for (v, d) in dist.iter().enumerate() {
            writeln!(w, "{v} {d}")?;
        }
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> CliResult {
    let f = Flags { args };
    let path = f.positional().ok_or("missing graph file")?;
    let s: u32 = f.require("--from")?.parse()?;
    let t: u32 = f.require("--to")?.parse()?;
    let g = load_graph(path)?;
    let start = std::time::Instant::now();
    let h = phast_ch::contract_graph(&g, &phast_ch::ContractionConfig::default());
    eprintln!("CH preprocessing in {:.2?}", start.elapsed());
    let mut q = phast_ch::ChQuery::new(&h).stall_on_demand(true);
    let start = std::time::Instant::now();
    if f.has("--path") {
        match q.query_path(s, t) {
            Some((d, path)) => {
                println!("distance {s} -> {t}: {d} ({} segments)", path.len() - 1);
                println!("{path:?}");
            }
            None => println!("{t} unreachable from {s}"),
        }
    } else {
        match q.query(s, t) {
            Some(d) => println!("distance {s} -> {t}: {d}"),
            None => println!("{t} unreachable from {s}"),
        }
    }
    eprintln!("query in {:.2?}", start.elapsed());
    Ok(())
}
