//! `phast-cli` — command-line front end for the library.
//!
//! ```text
//! phast-cli generate  --vertices 100000 --metric time --seed 7 -o net.gr --coords net.co
//! phast-cli stats     net.gr
//! phast-cli preprocess net.gr --out inst.phast [--reverse] [--threads N]
//!                     [--stats[=json]]
//! phast-cli tree      inst.phast --source 0 [--top 5] [--stats[=json]]
//! phast-cli query     net.gr --from 0 --to 999 [--path]
//! phast-cli matrix    inst.phast --sources 0,5,9 --targets 3,7
//!                     [--k 16] [--out dist.tsv] [--stats[=json]]
//! phast-cli customize net.gr --out custom.phast
//!                     (--metric weights.json | --perturb SEED)
//!                     [--name NAME] [--version V] [--emit-metric w.json]
//!                     [--threads N]
//! phast-cli serve     net.gr [--instance inst.phast] [--addr 127.0.0.1:7878]
//!                     [--k 16] [--window-ms 2] [--workers 2] [--queue 1024]
//!                     [--shed-queue-depth 768] [--shed-wait-ms N]
//!                     [--max-conns 256] [--io-timeout-ms 10000]
//!                     [--max-line-bytes 262144] [--epoch-history 4]
//!                     [--watch-metric weights.json]
//!                     [--canary-queries 8] [--guard-window-ms 0]
//!                     [--duration-ms 0] [--stats[=json]]
//! phast-cli route     --backends HOST:PORT[,HOST:PORT...]
//!                     [--addr 127.0.0.1:7800] [--probe-interval-ms 100]
//!                     [--eject-after 3] [--halfopen-after-ms 500]
//!                     [--max-failovers 3] [--default-budget-ms 5000]
//!                     [--connect-timeout-ms 2000] [--io-timeout-ms 10000]
//!                     [--max-conns 256] [--max-line-bytes 1048576]
//!                     [--duration-ms 0] [--stats[=json]]
//! phast-cli bench     [--out BENCH_phast.json] [--baseline BENCH_old.json]
//!                     [--samples 7] [--warmup 2] [--k 16]
//!                     [--threshold-pct 10] [--mad-k 4]
//! ```
//!
//! Graphs use the 9th DIMACS Implementation Challenge `.gr`/`.co` formats,
//! so real road networks work directly.
//!
//! Preprocessed artifacts have two formats, chosen by the output
//! extension: a path ending in `.phast` writes the crash-safe versioned
//! binary store of `phast-store` (checksummed, with the contraction
//! hierarchy bundled so `serve --instance` skips recontraction *and*
//! keeps its point-to-point fast path); any other path writes the legacy
//! serde_json artifact. `tree` and `serve --instance` sniff the format by
//! magic bytes, so both artifact kinds work everywhere.
//!
//! `matrix` computes a many-to-many distance table with RPHAST
//! (DESIGN.md §13): one target selection built over the comma-separated
//! `--targets` list, then one restricted k-lane sweep per `--k` sources.
//! Rows print to stdout as tab-separated values (or to `--out`), one row
//! per source, `INF` for unreachable targets.
//!
//! `customize` runs the CCH-style customization pass of `phast-metrics`
//! (DESIGN.md §14): contract once, freeze the metric-independent
//! topology, then derive a ready-to-serve instance for a new set of arc
//! weights — either a `MetricWeights` JSON document (`--metric`) or a
//! deterministically perturbed copy of the graph's own weights
//! (`--perturb SEED`, for smoke tests). The output `.phast` artifact
//! bundles the customized hierarchy *and* the metric itself (a `METRIC`
//! section), so `serve --instance` picks the new weights up directly.
//! `--emit-metric` additionally writes the metric as JSON — the document
//! `serve --watch-metric` consumes.
//!
//! `route` starts the failover front of `phast-router`: one port
//! spreading the serve line protocol across comma-separated replica
//! addresses, with health-check ejection, half-open recovery, pooled
//! connection draining, and deadline-bounded failover of retryable
//! failures (DESIGN.md §15). `--duration-ms` works as in `serve`, and
//! `--stats` prints the `router_*` counter report on exit.
//!
//! `serve` starts the batching query service of `phast-serve` (see
//! `DESIGN.md` §9 for the line protocol); `--duration-ms 0` (the default)
//! serves until killed, a positive value serves that long, then drains and
//! prints the service report. With `--watch-metric <path>` the server
//! also watches a weights JSON file and hot-swaps the serving metric
//! whenever the file holds a new `(name, version)` — queries keep flowing
//! on the old metric until the new epoch is published (DESIGN.md §14).
//! The watcher needs the base graph, so `--watch-metric` requires the
//! graph positional even when serving from `--instance`. Every swap runs
//! the guarded rollout pipeline (DESIGN.md §16): `--canary-queries`
//! sampled trees are checked bit-exactly against reference Dijkstra
//! before publication (0 disables the canary), and a positive
//! `--guard-window-ms` monitors service health after each publish,
//! auto-rolling-back onto the `--epoch-history` ring when it trips.
//!
//! `bench` runs the deterministic perf-regression suite over every hot
//! path (scalar Dijkstra, single-tree sweep, k-tree SIMD sweeps, the
//! parallel sweep, the GPHAST simulator, and the serve batch path) at
//! `PHAST_SCALE` vertices and writes a versioned `BENCH_phast.json`
//! artifact. With `--baseline` it compares against a previous artifact
//! using noise-aware thresholds and exits non-zero on any regression —
//! see `DESIGN.md` §12 for the schema and the comparison policy.
//!
//! `--stats` prints the observability report of the command (a table, or
//! one JSON object with `--stats=json`; see `DESIGN.md` "Observability").
//! The report always includes phase times and the settled count; the
//! remaining counters are nonzero only in builds with the `obs-counters`
//! cargo feature, and the report's `counters_enabled` field says which
//! build produced it.
//!
//! Every failure — a missing or unreadable file, a malformed graph, an
//! unknown flag, an out-of-range vertex — prints `error: ...` to stderr
//! and exits non-zero; the CLI never panics on bad input.

use phast_bench::cli::{
    check_vertex, create_file, load_graph, load_instance, parse_num, parse_threads,
    serve_config_from_flags, Flags, SERVE_FLAGS,
};
use phast_core::{Direction, PhastBuilder};
use phast_graph::dimacs;
use phast_graph::gen::{Metric, RoadNetworkConfig};
use phast_graph::INF;
use phast_serve::{Server, Service};
use std::io::{BufWriter, Write};
use std::process::exit;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("preprocess") => cmd_preprocess(&args[1..]),
        Some("tree") => cmd_tree(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("matrix") => cmd_matrix(&args[1..]),
        Some("customize") => cmd_customize(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => {
            eprintln!(
                "usage: phast-cli <generate|stats|preprocess|tree|query|matrix|customize|serve|route|bench> [options]\n\
                 see the module docs (or the README) for the option lists"
            );
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// The `--stats` switch: `None` = off, `Some(false)` = table,
/// `Some(true)` = JSON (`--stats=json`).
fn stats_mode(f: &Flags) -> Option<bool> {
    if f.has("--stats=json") {
        Some(true)
    } else if f.has("--stats") {
        Some(false)
    } else {
        None
    }
}

/// The two spellings of the stats switch, for command flag tables.
const STATS_FLAGS: [(&str, bool); 2] = [("--stats", false), ("--stats=json", false)];

fn emit_report(report: &phast_obs::Report, json: bool) -> CliResult {
    if json {
        println!("{}", serde_json::to_string(report)?);
    } else {
        phast_bench::report::report_to_table(report).print();
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let f = Flags::parse(
        args,
        &[
            ("--vertices", true),
            ("--metric", true),
            ("--seed", true),
            ("-o", true),
            ("--coords", true),
            ("--usa", false),
        ],
    )?;
    let n: usize = parse_num(f.require("--vertices")?, "--vertices")?;
    let metric = match f.get("--metric").unwrap_or("time") {
        "time" => Metric::TravelTime,
        "dist" | "distance" => Metric::TravelDistance,
        other => return Err(format!("unknown metric '{other}'").into()),
    };
    let seed: u64 = parse_num(f.get("--seed").unwrap_or("42"), "--seed")?;
    let out = f.require("-o")?;
    let cfg = if f.has("--usa") {
        RoadNetworkConfig::usa_like(n, seed, metric)
    } else {
        RoadNetworkConfig::europe_like(n, seed, metric)
    };
    let net = cfg.build();
    dimacs::write_gr(BufWriter::new(create_file(out)?), &net.graph)?;
    eprintln!(
        "wrote {out}: {} vertices, {} arcs",
        net.num_vertices(),
        net.num_arcs()
    );
    if let Some(co) = f.get("--coords") {
        dimacs::write_co(BufWriter::new(create_file(co)?), &net.coords)?;
        eprintln!("wrote {co}");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let f = Flags::parse(args, &[])?;
    let path = f.positional("graph file")?;
    let g = load_graph(path)?;
    let m = phast_graph::metrics::graph_metrics(&g);
    let scc = phast_graph::components::is_strongly_connected(&g);
    println!("graph        : {path}");
    println!("vertices     : {}", m.n);
    println!("arcs         : {} (avg degree {:.2})", m.m, m.avg_degree);
    println!("max degree   : {}", m.max_degree);
    println!("out-degrees  : {:?} (last bucket = 8+)", m.degree_histogram);
    println!(
        "weights      : {}..{} (mean {:.1})",
        m.min_weight, m.max_weight, m.mean_weight
    );
    println!(
        "arc span     : median |head-tail| = {} (layout locality)",
        m.median_arc_span
    );
    println!("hop diameter : >= {}", m.hop_diameter_lower_bound);
    println!("strongly connected: {scc}");
    Ok(())
}

fn cmd_preprocess(args: &[String]) -> CliResult {
    let mut spec = vec![
        ("-o", true),
        ("--out", true),
        ("--reverse", false),
        ("--threads", true),
    ];
    spec.extend(STATS_FLAGS);
    let f = Flags::parse(args, &spec)?;
    let path = f.positional("graph file")?;
    let out = f
        .get("--out")
        .or_else(|| f.get("-o"))
        .ok_or("missing required flag --out (or -o)")?;
    let g = load_graph(path)?;
    let dir = if f.has("--reverse") {
        Direction::Reverse
    } else {
        Direction::Forward
    };
    let ch_cfg = phast_ch::ContractionConfig {
        threads: parse_threads(&f)?,
        ..phast_ch::ContractionConfig::default()
    };
    let t = std::time::Instant::now();
    let h = phast_ch::contract_graph(&g, &ch_cfg);
    let p = PhastBuilder::new().direction(dir).build_with_hierarchy(&g, &h);
    let elapsed = t.elapsed();
    eprintln!(
        "preprocessed in {elapsed:.2?}: {} levels, {} shortcuts",
        p.num_levels(),
        p.num_shortcuts()
    );
    if let Some(json) = stats_mode(&f) {
        let c = phast_obs::prep::counters();
        let mut r = phast_obs::Report::new("phast preprocess");
        r.push_count("vertices", p.num_vertices() as u64)
            .push_count("levels", p.num_levels() as u64)
            .push_count("shortcuts", p.num_shortcuts() as u64)
            .push_count("shortcuts_added", c.shortcuts_added)
            .push_count("witness_searches", c.witness_searches)
            .push_time("preprocess_time", elapsed);
        emit_report(&r, json)?;
    }
    if out.ends_with(".phast") {
        phast_store::write_instance(std::path::Path::new(out), &p, Some(&h))
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
        eprintln!("wrote {out} (binary store, hierarchy bundled)");
    } else {
        serde_json::to_writer(BufWriter::new(create_file(out)?), &p)?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn cmd_tree(args: &[String]) -> CliResult {
    let mut spec = vec![("--source", true), ("--top", true), ("--out", true)];
    spec.extend(STATS_FLAGS);
    let f = Flags::parse(args, &spec)?;
    let path = f.positional("artifact file")?;
    let source: u32 = parse_num(f.require("--source")?, "--source")?;
    let (p, _) = load_instance(path)?;
    check_vertex(source, p.num_vertices(), "--source")?;
    let mut engine = p.engine();
    let t = std::time::Instant::now();
    let dist = engine.distances(source);
    eprintln!("tree from {source} in {:.2?}", t.elapsed());
    let reached = dist.iter().filter(|&&d| d < INF).count();
    let ecc = dist.iter().filter(|&&d| d < INF).max().copied().unwrap_or(0);
    println!("reached {reached} of {} vertices; eccentricity {ecc}", dist.len());
    if let Some(json) = stats_mode(&f) {
        emit_report(&engine.stats().report("phast tree query"), json)?;
    }
    if let Some(top) = f.get("--top") {
        let top: usize = parse_num(top, "--top")?;
        let mut far: Vec<(u32, u32)> = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d < INF)
            .map(|(v, &d)| (d, v as u32))
            .collect();
        far.sort_unstable_by(|a, b| b.cmp(a));
        for &(d, v) in far.iter().take(top) {
            println!("  vertex {v}: distance {d}");
        }
    }
    if let Some(out) = f.get("--out") {
        let mut w = BufWriter::new(create_file(out)?);
        for (v, d) in dist.iter().enumerate() {
            writeln!(w, "{v} {d}")?;
        }
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> CliResult {
    let f = Flags::parse(
        args,
        &[("--from", true), ("--to", true), ("--path", false)],
    )?;
    let path = f.positional("graph file")?;
    let s: u32 = parse_num(f.require("--from")?, "--from")?;
    let t: u32 = parse_num(f.require("--to")?, "--to")?;
    let g = load_graph(path)?;
    check_vertex(s, g.num_vertices(), "--from")?;
    check_vertex(t, g.num_vertices(), "--to")?;
    let start = std::time::Instant::now();
    let h = phast_ch::contract_graph(&g, &phast_ch::ContractionConfig::default());
    eprintln!("CH preprocessing in {:.2?}", start.elapsed());
    let mut q = phast_ch::ChQuery::new(&h).stall_on_demand(true);
    let start = std::time::Instant::now();
    if f.has("--path") {
        match q.query_path(s, t) {
            Some((d, path)) => {
                println!("distance {s} -> {t}: {d} ({} segments)", path.len() - 1);
                println!("{path:?}");
            }
            None => println!("{t} unreachable from {s}"),
        }
    } else {
        match q.query(s, t) {
            Some(d) => println!("distance {s} -> {t}: {d}"),
            None => println!("{t} unreachable from {s}"),
        }
    }
    eprintln!("query in {:.2?}", start.elapsed());
    Ok(())
}

fn cmd_matrix(args: &[String]) -> CliResult {
    let mut spec = vec![
        ("--sources", true),
        ("--targets", true),
        ("--k", true),
        ("--out", true),
    ];
    spec.extend(STATS_FLAGS);
    let f = Flags::parse(args, &spec)?;
    let path = f.positional("artifact file")?;
    let parse_list = |raw: &str, what: &str| -> Result<Vec<u32>, String> {
        let list: Vec<u32> = raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| parse_num(s, what))
            .collect::<Result<_, _>>()?;
        if list.is_empty() {
            return Err(format!("{what} needs at least one vertex id"));
        }
        Ok(list)
    };
    let sources = parse_list(f.require("--sources")?, "--sources")?;
    let targets = parse_list(f.require("--targets")?, "--targets")?;
    let k: usize = parse_num(f.get("--k").unwrap_or("16"), "--k")?;
    if k == 0 || k > phast_core::simd::MAX_K {
        return Err(format!("--k must be in 1..={} (got {k})", phast_core::simd::MAX_K).into());
    }
    let (p, _) = load_instance(path)?;
    for &s in &sources {
        check_vertex(s, p.num_vertices(), "--sources")?;
    }
    for &t in &targets {
        check_vertex(t, p.num_vertices(), "--targets")?;
    }

    let t0 = std::time::Instant::now();
    let mut builder = phast_core::SelectionBuilder::new(&p);
    let sel = builder.build(&targets);
    let build = t0.elapsed();
    let mut engine = phast_core::RestrictedMultiEngine::new(&p, k);
    let t1 = std::time::Instant::now();
    let rows = engine.matrix(&sel, &sources);
    eprintln!(
        "selection of {} vertices ({} targets) in {build:.2?}; \
         {}x{} matrix in {:.2?} ({} restricted sweeps, {:?} kernel)",
        sel.len(),
        targets.len(),
        sources.len(),
        targets.len(),
        t1.elapsed(),
        engine.chunks_for(sources.len()),
        engine.simd_level(),
    );
    let mut w: Box<dyn Write> = match f.get("--out") {
        Some(out) => Box::new(BufWriter::new(create_file(out)?)),
        None => Box::new(std::io::stdout().lock()),
    };
    for (row, &s) in rows.iter().zip(&sources) {
        write!(w, "{s}")?;
        for &d in row {
            if d >= INF {
                write!(w, "\tINF")?;
            } else {
                write!(w, "\t{d}")?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    if let Some(out) = f.get("--out") {
        eprintln!("wrote {out}");
    }
    if let Some(json) = stats_mode(&f) {
        emit_report(&engine.stats().report("phast matrix query"), json)?;
    }
    Ok(())
}

fn cmd_route(args: &[String]) -> CliResult {
    let mut spec = vec![
        ("--backends", true),
        ("--addr", true),
        ("--probe-interval-ms", true),
        ("--eject-after", true),
        ("--halfopen-after-ms", true),
        ("--max-failovers", true),
        ("--default-budget-ms", true),
        ("--connect-timeout-ms", true),
        ("--io-timeout-ms", true),
        ("--max-conns", true),
        ("--max-line-bytes", true),
        ("--duration-ms", true),
    ];
    spec.extend(STATS_FLAGS);
    let f = Flags::parse(args, &spec)?;
    let addr = f.get("--addr").unwrap_or("127.0.0.1:7800");
    let backends: Vec<std::net::SocketAddr> = f
        .require("--backends")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|e| format!("bad backend address `{s}`: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if backends.is_empty() {
        return Err("--backends needs at least one HOST:PORT".into());
    }
    let d = phast_router::RouterConfig::default();
    let ms = |flag: &str, dft: Duration| -> Result<Duration, String> {
        Ok(match f.get(flag) {
            Some(v) => Duration::from_millis(parse_num(v, flag)?),
            None => dft,
        })
    };
    let cfg = phast_router::RouterConfig {
        backends,
        probe_interval: ms("--probe-interval-ms", d.probe_interval)?,
        eject_after: match f.get("--eject-after") {
            Some(v) => parse_num(v, "--eject-after")?,
            None => d.eject_after,
        },
        halfopen_after: ms("--halfopen-after-ms", d.halfopen_after)?,
        connect_timeout: ms("--connect-timeout-ms", d.connect_timeout)?,
        io_timeout: ms("--io-timeout-ms", d.io_timeout)?,
        max_failovers: match f.get("--max-failovers") {
            Some(v) => parse_num(v, "--max-failovers")?,
            None => d.max_failovers,
        },
        default_budget: ms("--default-budget-ms", d.default_budget)?,
        max_conns: match f.get("--max-conns") {
            Some(v) => parse_num(v, "--max-conns")?,
            None => d.max_conns,
        },
        max_line_bytes: match f.get("--max-line-bytes") {
            Some(v) => parse_num(v, "--max-line-bytes")?,
            None => d.max_line_bytes,
        },
    };
    if cfg.eject_after == 0 {
        return Err("--eject-after must be positive".into());
    }
    if cfg.max_conns == 0 {
        return Err("--max-conns must be positive".into());
    }
    if cfg.max_line_bytes < 64 {
        return Err("--max-line-bytes must be at least 64 (a minimal request line)".into());
    }
    let duration_ms: u64 = parse_num(f.get("--duration-ms").unwrap_or("0"), "--duration-ms")?;
    eprintln!(
        "routing across {} backend(s): eject-after={} probe-interval={:?} \
         halfopen-after={:?} max-failovers={} default-budget={:?}",
        cfg.backends.len(),
        cfg.eject_after,
        cfg.probe_interval,
        cfg.halfopen_after,
        cfg.max_failovers,
        cfg.default_budget,
    );
    let router = phast_router::Router::spawn(cfg, addr)
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    eprintln!("listening on {}", router.local_addr());
    if duration_ms == 0 {
        // Route until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_millis(duration_ms));
    let report = router.stats().report("phast-router");
    router.shutdown();
    match stats_mode(&f) {
        Some(json) => emit_report(&report, json)?,
        None => emit_report(&report, false)?,
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> CliResult {
    let f = Flags::parse(
        args,
        &[
            ("--out", true),
            ("--baseline", true),
            ("--samples", true),
            ("--warmup", true),
            ("--k", true),
            ("--threshold-pct", true),
            ("--mad-k", true),
        ],
    )?;
    let cfg = phast_bench::regress::SuiteConfig {
        scale: phast_bench::workload::scale_from_env(50_000),
        warmup: parse_num(f.get("--warmup").unwrap_or("2"), "--warmup")?,
        runs: parse_num(f.get("--samples").unwrap_or("7"), "--samples")?,
        k: parse_num(f.get("--k").unwrap_or("16"), "--k")?,
    };
    let out = f.get("--out").unwrap_or("BENCH_phast.json");
    eprintln!(
        "bench suite: {} vertices (PHAST_SCALE), k={}, {} warmup + {} samples per benchmark",
        cfg.scale, cfg.k, cfg.warmup, cfg.runs
    );
    let t = std::time::Instant::now();
    let artifact = phast_bench::regress::run_suite(&cfg)?;
    eprintln!("suite finished in {:.2?}", t.elapsed());
    artifact.table().print();
    phast_bench::regress::write_artifact(std::path::Path::new(out), &artifact)?;
    eprintln!("wrote {out}");
    if let Some(base_path) = f.get("--baseline") {
        let baseline = phast_bench::regress::load_artifact(std::path::Path::new(base_path))?;
        let ccfg = phast_bench::regress::CompareConfig {
            threshold_pct: parse_num(f.get("--threshold-pct").unwrap_or("10"), "--threshold-pct")?,
            mad_k: parse_num(f.get("--mad-k").unwrap_or("4"), "--mad-k")?,
        };
        let cmp = phast_bench::regress::compare(&baseline, &artifact, &ccfg);
        cmp.table().print();
        if cmp.host_mismatch {
            eprintln!(
                "warning: baseline was recorded on a different host; \
                 the noise thresholds were calibrated for same-machine runs"
            );
        }
        let failures = cmp.failures();
        if !failures.is_empty() {
            for msg in &failures {
                eprintln!("regression: {msg}");
            }
            return Err(format!(
                "{} regression(s) against baseline `{base_path}`",
                failures.len()
            )
            .into());
        }
        eprintln!(
            "no regressions against `{base_path}` (allowance: max({}%, {}x MAD) per benchmark)",
            ccfg.threshold_pct, ccfg.mad_k
        );
    }
    Ok(())
}

fn cmd_customize(args: &[String]) -> CliResult {
    let f = Flags::parse(
        args,
        &[
            ("--out", true),
            ("--metric", true),
            ("--perturb", true),
            ("--name", true),
            ("--version", true),
            ("--emit-metric", true),
            ("--threads", true),
        ],
    )?;
    let path = f.positional("graph file")?;
    let out = f.require("--out")?;
    let g = load_graph(path)?;
    let threads = parse_threads(&f)?;

    let ch_cfg = phast_ch::ContractionConfig {
        threads,
        ..phast_ch::ContractionConfig::default()
    };
    let t = std::time::Instant::now();
    let h = phast_ch::contract_graph(&g, &ch_cfg);
    let contract = t.elapsed();
    let t = std::time::Instant::now();
    let customizer = phast_metrics::MetricCustomizer::new(g, &h)?.with_threads(threads);
    eprintln!(
        "contracted in {contract:.2?}, froze topology in {:.2?} \
         ({} closure arcs, {} triangles, {} levels)",
        t.elapsed(),
        customizer.frozen().num_arcs(),
        customizer.frozen().num_triangles(),
        customizer.frozen().num_levels(),
    );

    let metric = match (f.get("--metric"), f.get("--perturb")) {
        (Some(_), Some(_)) => {
            return Err("--metric and --perturb are mutually exclusive".into())
        }
        (Some(mp), None) => {
            let bytes = std::fs::read_to_string(mp)
                .map_err(|e| format!("cannot read metric `{mp}`: {e}"))?;
            let m: phast_metrics::MetricWeights = serde_json::from_str(&bytes)
                .map_err(|e| format!("`{mp}` is not a metric-weights JSON document: {e:?}"))?;
            m
        }
        (None, Some(seed)) => {
            let seed: u64 = parse_num(seed, "--perturb")?;
            let name = f.get("--name").unwrap_or("perturbed");
            let version: u64 = parse_num(f.get("--version").unwrap_or("1"), "--version")?;
            phast_metrics::MetricWeights::perturbed(customizer.graph(), name, version, seed)
        }
        (None, None) => {
            return Err("customize needs --metric <weights.json> or --perturb <seed>".into())
        }
    };

    let t = std::time::Instant::now();
    let (p, ch) = customizer.build(&metric)?;
    eprintln!(
        "customized metric `{}` v{} in {:.2?} (vs {contract:.2?} recontraction)",
        metric.name,
        metric.version,
        t.elapsed(),
    );
    phast_store::write_instance_with_metrics(
        std::path::Path::new(out),
        &p,
        Some(&ch),
        std::slice::from_ref(&metric),
    )
    .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!("wrote {out} (customized instance, hierarchy + metric bundled)");
    if let Some(mp) = f.get("--emit-metric") {
        let mut w = BufWriter::new(create_file(mp)?);
        w.write_all(serde_json::to_string(&metric)?.as_bytes())?;
        w.flush()?;
        eprintln!("wrote {mp} (metric weights JSON)");
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut spec = vec![
        ("--instance", true),
        ("--addr", true),
        ("--duration-ms", true),
        ("--watch-metric", true),
        ("--watch-interval-ms", true),
        ("--canary-queries", true),
        ("--guard-window-ms", true),
    ];
    spec.extend(SERVE_FLAGS);
    spec.extend(STATS_FLAGS);
    let f = Flags::parse(args, &spec)?;
    let addr = f.get("--addr").unwrap_or("127.0.0.1:7878");
    let cfg = serve_config_from_flags(&f)?;
    let duration_ms: u64 = parse_num(f.get("--duration-ms").unwrap_or("0"), "--duration-ms")?;
    let watch = f.get("--watch-metric");
    let watch_interval: u64 =
        parse_num(f.get("--watch-interval-ms").unwrap_or("500"), "--watch-interval-ms")?;
    let wcfg_default = phast_serve::WatchConfig::default();
    let watch_cfg = phast_serve::WatchConfig {
        canary_queries: match f.get("--canary-queries") {
            Some(v) => parse_num(v, "--canary-queries")?,
            None => wcfg_default.canary_queries,
        },
        guard_window: Duration::from_millis(parse_num(
            f.get("--guard-window-ms").unwrap_or("0"),
            "--guard-window-ms",
        )?),
        ..wcfg_default
    };
    let t = std::time::Instant::now();
    let (service, customizer) = if let Some(inst) = f.get("--instance") {
        // A preprocessed artifact skips recontraction entirely; a binary
        // `.phast` bundle also restores the hierarchy, keeping the
        // point-to-point CH rung of the degradation ladder.
        let (p, h) = load_instance(inst)?;
        let n = p.num_vertices();
        let with_ch = h.is_some();
        let h = h.map(std::sync::Arc::new);
        let service = Service::new(std::sync::Arc::new(p), h.clone(), cfg.clone());
        eprintln!(
            "loaded instance `{inst}` ({n} vertices, hierarchy {}) in {:.2?}",
            if with_ch { "bundled" } else { "absent" },
            t.elapsed(),
        );
        // The customizer needs the base graph (the instance is permuted
        // and weight-baked), so --watch-metric keeps the graph positional
        // mandatory even in instance mode.
        let customizer = if watch.is_some() {
            let gpath = f.positional("graph file (--watch-metric needs the base graph)")?;
            let g = load_graph(gpath)?;
            let c = match &h {
                Some(h) => phast_metrics::MetricCustomizer::new(g, h)?,
                None => {
                    let h2 =
                        phast_ch::contract_graph(&g, &phast_ch::ContractionConfig::default());
                    phast_metrics::MetricCustomizer::new(g, &h2)?
                }
            };
            Some(std::sync::Arc::new(c))
        } else {
            None
        };
        (service, customizer)
    } else {
        let path = f.positional("graph file")?;
        let g = load_graph(path)?;
        let n = g.num_vertices();
        let built = if watch.is_some() {
            // Contract here so the hierarchy can seed the customizer too.
            let h = phast_ch::contract_graph(&g, &phast_ch::ContractionConfig::default());
            let p = PhastBuilder::new().build_with_hierarchy(&g, &h);
            let h = std::sync::Arc::new(h);
            let service =
                Service::new(std::sync::Arc::new(p), Some(std::sync::Arc::clone(&h)), cfg.clone());
            let customizer = phast_metrics::MetricCustomizer::new(g, &h)?;
            (service, Some(std::sync::Arc::new(customizer)))
        } else {
            (Service::for_graph(&g, cfg.clone()), None)
        };
        eprintln!("preprocessed {n} vertices in {:.2?}", t.elapsed());
        built
    };
    let mut watcher = match (watch, customizer) {
        (Some(path), Some(customizer)) => {
            eprintln!(
                "watching `{path}` for metric updates (poll every {watch_interval}ms, \
                 canary {} queries, guard window {:?})",
                watch_cfg.canary_queries, watch_cfg.guard_window
            );
            Some(phast_serve::MetricWatcher::spawn_with(
                std::sync::Arc::clone(&service),
                customizer,
                std::path::PathBuf::from(path),
                Duration::from_millis(watch_interval),
                watch_cfg,
            ))
        }
        _ => None,
    };
    eprintln!(
        "serving with k={} window={:?} workers={} queue={} shed-depth={} \
         max-conns={} io-timeout={:?} max-line-bytes={}",
        cfg.max_k,
        cfg.window,
        cfg.workers,
        cfg.queue_capacity,
        cfg.shed_queue_depth,
        cfg.max_conns,
        cfg.io_timeout,
        cfg.max_line_bytes
    );
    let server = Server::spawn(std::sync::Arc::clone(&service), addr)
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    eprintln!("listening on {}", server.local_addr());
    if duration_ms == 0 {
        // Serve until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_millis(duration_ms));
    if let Some(w) = watcher.as_mut() {
        w.shutdown();
    }
    server.shutdown();
    let report = service.stats().report("phast-serve");
    match stats_mode(&f) {
        Some(json) => emit_report(&report, json)?,
        None => emit_report(&report, false)?,
    }
    Ok(())
}
