//! `loadgen` — closed-loop load generator for the `phast-serve` batching
//! query service.
//!
//! ```text
//! loadgen [--vertices 2000] [--seed 7] [--clients 16] [--k 16]
//!         [--window-ms 2] [--workers 2] [--queue 1024] [--requests 200]
//!         [--max-conns 256] [--io-timeout-ms 10000] [--max-line-bytes 262144]
//!         [--shed-queue-depth 768] [--shed-wait-ms N]
//!         [--duration-ms 0] [--mode mixed|tree|many|p2p] [--addr HOST:PORT]
//!         [--chaos] [--chaos-modes slowloris,disconnect,garbage,oversize,burst,swap]
//!         [--chaos-modes kill-backend] [--chaos-modes poison-metric]
//!         [--compare] [--smoke] [--inject-panic] [--json]
//! ```
//!
//! By default it self-hosts: it generates a synthetic road network, starts
//! a loopback server with the given scheduler configuration, drives it
//! with `--clients` closed-loop connections (each connection keeps exactly
//! one request in flight), and reports throughput, latency percentiles and
//! the server's batching counters for that `(clients, k, window)` cell.
//! With `--addr` it drives an external server instead and reports the
//! client-side numbers only.
//!
//! `--compare` runs the configured cell and a `k = 1` cell (both with one
//! worker, so the difference is batching, not thread parallelism) on the
//! same graph and emits one obs-schema JSON object with the time-per-tree
//! of each cell and the speedup ratio — the acceptance check that batching
//! actually pays.
//!
//! `--smoke` is the CI entry point: a short self-hosted run (2 s unless
//! `--duration-ms` says otherwise) that exits non-zero unless at least one
//! batch served two or more requests.
//!
//! `--inject-panic` is the supervision soak: mid-run, a dedicated
//! connection sends a request for a poisoned source the scheduler is
//! configured to panic on (via `ServeConfig::panic_on_source`), while the
//! regular clients steer clear of it. The run exits non-zero unless the
//! poisoned request came back as a typed `internal` error, the service
//! kept answering afterwards, and the server counted `worker_restarts >=
//! 1` — the end-to-end proof that a worker panic costs one batch, not the
//! service.
//!
//! `--chaos` is the fault-injection harness: alongside a handful of
//! well-behaved clients it runs hostile actors against the self-hosted
//! server — slowloris writers that dribble bytes slower than the I/O
//! timeout, mid-request disconnectors, garbage-byte flooders, oversized
//! request lines, burst storms that saturate the admission queue — and a
//! `swap` actor that hot-swaps the serving metric mid-storm (precomputed
//! perturbed customizations published through `Service::swap_epoch` every
//! ~300 ms). The run exits non-zero unless every well-behaved request
//! inside its deadline succeeded with distances matching the scalar
//! Dijkstra reference *for the metric epoch the reply was answered
//! under* (the reply's `epoch` stamp picks the reference table), the
//! hostile traffic registered in the hardening counters
//! (`timed_out_connections`, `rejected_invalid`, `shed_overload`,
//! `metric_swaps`), and live connections stayed bounded by `--max-conns`
//! throughout. All modes run by default; `--chaos-modes slowloris,burst`
//! picks a subset. `--chaos --smoke` is the short CI variant.
//!
//! `--chaos-modes kill-backend` is the replicated-tier chaos gate and
//! replaces the in-process server with real processes: the graph is
//! preprocessed once into a temp `.phast` artifact, two `phast_cli serve`
//! replicas are spawned as child processes, and an in-process
//! `phast-router` failover front spreads the well-behaved clients across
//! them. Mid-burst, one replica is SIGKILLed and later restarted on the
//! same port. The run exits non-zero unless every well-behaved reply
//! stayed exact against the Dijkstra reference, `router_failovers >= 1`
//! (a request in flight on the dying replica was re-answered elsewhere),
//! the kill registered as an ejection, and the restarted replica
//! rejoined rotation through the half-open door (`router_recoveries >=
//! 1`).
//!
//! `--chaos-modes poison-metric` is the guarded-rollout chaos gate: a
//! metric watcher polls a weights file behind the live server while the
//! well-behaved clients burst against it. Two honest metrics are dropped
//! mid-burst and must publish; between them a *poisoned* metric — honest
//! on disk, corrupted inside the customizer by the armed
//! `PHAST_CANARY_FAULT` seam — is dropped and must be canary-rejected
//! with the serving epoch untouched. The run exits non-zero unless 100%
//! of well-behaved replies stayed exact against their admission-epoch
//! reference, the poisoned metric never answered a single query, and
//! `canary_failures`/`quarantined_metrics` registered in the stats.

use phast_bench::cli::{parse_num, serve_config_from_flags, Flags, SERVE_FLAGS};
use phast_dijkstra::dijkstra::shortest_paths;
use phast_graph::gen::{Metric, RoadNetworkConfig};
use phast_graph::Graph;
use phast_obs::Report;
use phast_serve::{
    Client, ClientConfig, ErrorKind, MetricWatcher, ServeConfig, Server, Service, WatchConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    if let Err(e) = run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        eprintln!("error: {e}");
        exit(1);
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Mixed,
    Tree,
    Many,
    P2p,
}

/// What one cell run produced, client side and (self-hosted) server side.
struct CellOutcome {
    ok: u64,
    errors: u64,
    elapsed: Duration,
    /// Sorted request latencies in nanoseconds.
    latencies: Vec<u64>,
    served: u64,
    batches: u64,
    multi_batches: u64,
    occupancy: f64,
    worker_restarts: u64,
    quarantined: u64,
}

impl CellOutcome {
    fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((p / 100.0) * (self.latencies.len() - 1) as f64).round() as usize;
        Duration::from_nanos(self.latencies[idx])
    }

    /// Mean wall time per answered request — with closed-loop clients this
    /// is the service's inverse throughput, the paper's trees-per-second
    /// lever seen from outside.
    fn time_per_tree(&self) -> Duration {
        if self.ok == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.elapsed.as_nanos() / self.ok as u128) as u64)
        }
    }

    fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.elapsed.as_secs_f64()
        }
    }

    fn fill_report(&self, r: &mut Report, suffix: &str) {
        r.push_count(format!("requests_ok{suffix}"), self.ok)
            .push_count(format!("requests_err{suffix}"), self.errors)
            .push_time(format!("elapsed{suffix}"), self.elapsed)
            .push_ratio(format!("throughput_rps{suffix}"), self.throughput())
            .push_time(format!("time_per_tree{suffix}"), self.time_per_tree())
            .push_time(format!("latency_p50{suffix}"), self.percentile(50.0))
            .push_time(format!("latency_p90{suffix}"), self.percentile(90.0))
            .push_time(format!("latency_p99{suffix}"), self.percentile(99.0))
            .push_count(format!("served{suffix}"), self.served)
            .push_count(format!("batches{suffix}"), self.batches)
            .push_count(format!("multi_batches{suffix}"), self.multi_batches)
            .push_ratio(format!("mean_batch_occupancy{suffix}"), self.occupancy)
            .push_count(format!("worker_restarts{suffix}"), self.worker_restarts)
            .push_count(format!("quarantined_requests{suffix}"), self.quarantined);
    }
}

struct LoadSpec {
    clients: usize,
    requests: u64,
    duration: Option<Duration>,
    mode: Mode,
    seed: u64,
}

fn run(args: &[String]) -> Result<(), String> {
    let mut spec_flags: Vec<(&str, bool)> = vec![
        ("--vertices", true),
        ("--seed", true),
        ("--clients", true),
        ("--requests", true),
        ("--duration-ms", true),
        ("--mode", true),
        ("--addr", true),
        ("--chaos", false),
        ("--chaos-modes", true),
        ("--compare", false),
        ("--smoke", false),
        ("--inject-panic", false),
        ("--json", false),
    ];
    spec_flags.extend_from_slice(&SERVE_FLAGS);
    let f = Flags::parse(args, &spec_flags)?;
    let vertices: usize = parse_num(f.get("--vertices").unwrap_or("2000"), "--vertices")?;
    let seed: u64 = parse_num(f.get("--seed").unwrap_or("7"), "--seed")?;
    let clients: usize = parse_num(f.get("--clients").unwrap_or("16"), "--clients")?;
    let requests: u64 = parse_num(f.get("--requests").unwrap_or("200"), "--requests")?;
    let duration_ms: u64 = parse_num(f.get("--duration-ms").unwrap_or("0"), "--duration-ms")?;
    // `--compare` defaults to one-to-many requests: they cost a full tree
    // sweep server-side but have constant-size replies, so the measured
    // difference is the engine, not JSON encoding of n distances.
    let default_mode = if f.has("--compare") { "many" } else { "mixed" };
    let mode = match f.get("--mode").unwrap_or(default_mode) {
        "mixed" => Mode::Mixed,
        "tree" => Mode::Tree,
        "many" => Mode::Many,
        "p2p" => Mode::P2p,
        other => return Err(format!("unknown --mode `{other}` (mixed|tree|many|p2p)")),
    };
    let mut cfg = serve_config_from_flags(&f)?;
    if clients == 0 {
        return Err("--clients must be positive".into());
    }
    let json = f.has("--json");
    let smoke = f.has("--smoke");
    let compare = f.has("--compare");
    let inject = f.has("--inject-panic");
    let chaos = f.has("--chaos");
    let chaos_modes = match f.get("--chaos-modes") {
        Some(list) => {
            if !chaos {
                return Err("--chaos-modes needs --chaos".into());
            }
            ChaosModes::parse(list)?
        }
        None => ChaosModes::all(),
    };

    if f.has("--addr") && (smoke || compare || inject || chaos) {
        return Err(
            "--smoke/--compare/--inject-panic/--chaos self-host a server; drop --addr".into(),
        );
    }
    if inject && compare {
        return Err("--inject-panic perturbs timings; drop --compare".into());
    }
    if chaos && (compare || inject) {
        return Err("--chaos is its own run; drop --compare/--inject-panic".into());
    }

    if chaos {
        // Chaos wants the limits within reach of a short run: a sub-second
        // I/O timeout so slowloris reaping is observable, a small line cap
        // so the oversize actor is cheap, and a shallow queue/shed depth so
        // burst storms actually shed. Explicit flags still win.
        if f.get("--io-timeout-ms").is_none() {
            cfg.io_timeout = Duration::from_millis(400);
        }
        if f.get("--max-line-bytes").is_none() {
            cfg.max_line_bytes = 4096;
        }
        if f.get("--queue").is_none() {
            cfg.queue_capacity = 64;
        }
        if f.get("--shed-queue-depth").is_none() {
            cfg.shed_queue_depth = 8.min(cfg.queue_capacity);
        }
        if f.get("--max-conns").is_none() {
            cfg.max_conns = 64;
        }
    }

    let spec = LoadSpec {
        clients,
        requests,
        duration: match (duration_ms, smoke) {
            (0, true) => Some(Duration::from_millis(2000)),
            (0, false) => None,
            (ms, _) => Some(Duration::from_millis(ms)),
        },
        mode,
        seed,
    };

    if let Some(addr) = f.get("--addr") {
        // External server: client-side numbers only.
        let probe = Client::connect(addr).map_err(|e| format!("cannot connect `{addr}`: {e}"))?;
        drop(probe);
        let outcome = drive(addr, vertices, &spec, "external")?;
        return emit_single(&outcome, &cfg, &spec, json);
    }

    eprintln!("generating {vertices}-vertex synthetic road network (seed {seed})...");
    let net = RoadNetworkConfig::europe_like(vertices, seed, Metric::TravelTime).build();

    if chaos {
        let duration = Duration::from_millis(match (duration_ms, smoke) {
            (0, true) => 1500,
            (0, false) => 4000,
            (ms, _) => ms,
        });
        let wb_clients = spec.clients.min(4);
        if chaos_modes.poison_metric {
            if chaos_modes.any_in_process() || chaos_modes.kill_backend {
                return Err(
                    "poison-metric owns the watcher choreography; \
                     use --chaos-modes poison-metric alone"
                        .into(),
                );
            }
            return run_chaos_poison_metric(&net.graph, cfg, seed, duration, wb_clients, json);
        }
        if chaos_modes.kill_backend {
            if chaos_modes.any_in_process() {
                return Err(
                    "kill-backend replaces the in-process server with child replicas; \
                     use --chaos-modes kill-backend alone"
                        .into(),
                );
            }
            return run_chaos_killbackend(&net.graph, seed, duration, wb_clients, json);
        }
        return run_chaos(&net.graph, cfg, seed, duration, wb_clients, chaos_modes, json);
    }

    if inject {
        // Poison the highest-ID vertex; regular clients draw sources and
        // targets from 0..n-1, so only the injector connection trips it.
        let n = net.num_vertices();
        if n < 2 {
            return Err("--inject-panic needs at least 2 vertices".into());
        }
        cfg.panic_on_source = Some((n - 1) as u32);
    }

    if compare {
        let mut cfg_batched = cfg.clone();
        cfg_batched.workers = 1;
        let cfg_scalar = ServeConfig {
            max_k: 1,
            workers: 1,
            ..cfg.clone()
        };
        let batched = run_cell(&net.graph, cfg_batched.clone(), &spec, "batched")?;
        let scalar = run_cell(&net.graph, cfg_scalar, &spec, "scalar")?;
        let speedup = if batched.time_per_tree().is_zero() {
            0.0
        } else {
            scalar.time_per_tree().as_secs_f64() / batched.time_per_tree().as_secs_f64()
        };
        let mut r = Report::new("loadgen compare");
        r.push_count("vertices", net.num_vertices() as u64)
            .push_count("clients", spec.clients as u64)
            .push_count("k_batched", cfg_batched.max_k as u64)
            .push_time("batch_window", cfg_batched.window)
            .push_ratio("speedup_time_per_tree", speedup);
        batched.fill_report(&mut r, "_batched");
        scalar.fill_report(&mut r, "_scalar");
        // The acceptance comparison is always machine-readable.
        println!("{}", serde_json::to_string(&r).map_err(|e| e.to_string())?);
        eprintln!(
            "time/tree: batched(k={}) {:.2?} vs scalar(k=1) {:.2?} -> speedup {speedup:.2}x \
             (occupancy {:.2})",
            cfg_batched.max_k,
            batched.time_per_tree(),
            scalar.time_per_tree(),
            batched.occupancy,
        );
        if batched.occupancy <= 1.0 {
            return Err(format!(
                "mean batch occupancy {:.2} did not exceed 1 — batching never engaged",
                batched.occupancy
            ));
        }
        return Ok(());
    }

    let outcome = run_cell(&net.graph, cfg.clone(), &spec, "cell")?;
    if smoke && outcome.multi_batches == 0 {
        emit_single(&outcome, &cfg, &spec, json)?;
        return Err(format!(
            "smoke check failed: no batch served >= 2 requests ({} batches, occupancy {:.2})",
            outcome.batches, outcome.occupancy
        ));
    }
    emit_single(&outcome, &cfg, &spec, json)?;
    if smoke {
        eprintln!(
            "smoke ok: {} multi-request batches, occupancy {:.2}",
            outcome.multi_batches, outcome.occupancy
        );
    }
    Ok(())
}

fn emit_single(
    outcome: &CellOutcome,
    cfg: &ServeConfig,
    spec: &LoadSpec,
    json: bool,
) -> Result<(), String> {
    let mut r = Report::new("loadgen");
    r.push_count("clients", spec.clients as u64)
        .push_count("k", cfg.max_k as u64)
        .push_time("batch_window", cfg.window)
        .push_count("workers", cfg.workers as u64);
    outcome.fill_report(&mut r, "");
    if json {
        println!("{}", serde_json::to_string(&r).map_err(|e| e.to_string())?);
    } else {
        phast_bench::report::report_to_table(&r).print();
    }
    Ok(())
}

/// Starts a loopback server with `cfg`, drives it with `spec`, gracefully
/// shuts it down, and returns client- plus server-side numbers.
fn run_cell(
    graph: &Graph,
    cfg: ServeConfig,
    spec: &LoadSpec,
    label: &str,
) -> Result<CellOutcome, String> {
    let poison = cfg.panic_on_source;
    let service = Service::for_graph(graph, cfg);
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0")
        .map_err(|e| format!("cannot bind loopback: {e}"))?;
    let addr = server.local_addr().to_string();
    // Regular traffic stays below the poisoned vertex (if any), so only
    // the dedicated injector connection can trip the fault.
    let drive_n = graph.num_vertices() - usize::from(poison.is_some());
    let injector = poison.map(|bad| {
        let addr = addr.clone();
        std::thread::Builder::new()
            .name("loadgen-injector".into())
            .spawn(move || inject_poison(&addr, bad))
            .expect("cannot spawn injector thread")
    });
    let mut outcome = drive(&addr, drive_n, spec, label)?;
    if let Some(h) = injector {
        h.join().map_err(|_| "injector thread panicked".to_string())??;
        // The panic must have cost one batch, not the service: a fresh
        // connection after the fault still gets exact answers.
        let mut probe = Client::connect(&addr)
            .map_err(|e| format!("post-panic connect failed: {e}"))?;
        probe
            .tree(0, None)
            .map_err(|e| format!("service stopped answering after the panic: {e}"))?;
    }
    server.shutdown();
    let stats = service.stats();
    outcome.served = stats.served();
    outcome.batches = stats.batches();
    outcome.multi_batches = stats.multi_batches();
    outcome.occupancy = stats.mean_batch_occupancy();
    outcome.worker_restarts = stats.worker_restarts();
    outcome.quarantined = stats.quarantined_requests();
    if poison.is_some() {
        if outcome.worker_restarts == 0 {
            return Err("injected panic did not register: worker_restarts == 0".into());
        }
        eprintln!(
            "[{label}] soak ok: {} worker restart(s), {} quarantined request(s), \
             service answered afterwards",
            outcome.worker_restarts, outcome.quarantined
        );
    }
    Ok(outcome)
}

/// Sends the poisoned request and insists on the typed quarantine reply.
fn inject_poison(addr: &str, bad: u32) -> Result<(), String> {
    // Let the regular clients get going first so the panic lands mid-run.
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(addr).map_err(|e| format!("injector connect: {e}"))?;
    match client.tree(bad, None) {
        Ok(_) => Err("poisoned request returned an answer instead of a typed error".into()),
        Err(e) if e.kind == ErrorKind::Internal => Ok(()),
        Err(e) => Err(format!(
            "poisoned request got error kind {:?} instead of internal: {}",
            e.kind, e.message
        )),
    }
}

/// Runs the closed-loop clients against `addr` and merges their latencies.
fn drive(
    addr: &str,
    num_vertices: usize,
    spec: &LoadSpec,
    label: &str,
) -> Result<CellOutcome, String> {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..spec.clients {
        let addr = addr.to_string();
        let stop = Arc::clone(&stop);
        let mode = spec.mode;
        let requests = if spec.duration.is_some() {
            u64::MAX
        } else {
            spec.requests
        };
        let seed = spec.seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9);
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-client-{c}"))
                .spawn(move || client_loop(&addr, num_vertices, mode, seed, requests, &stop))
                .map_err(|e| format!("cannot spawn client thread: {e}"))?,
        );
    }
    if let Some(d) = spec.duration {
        std::thread::sleep(d);
        stop.store(true, Ordering::SeqCst);
    }
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (lat, errs) = h.join().map_err(|_| "client thread panicked".to_string())?;
        latencies.extend(lat);
        errors += errs;
    }
    let elapsed = start.elapsed();
    eprintln!(
        "[{label}] {} ok / {errors} errors in {elapsed:.2?}",
        latencies.len()
    );
    latencies.sort_unstable();
    Ok(CellOutcome {
        ok: latencies.len() as u64,
        errors,
        elapsed,
        latencies,
        served: 0,
        batches: 0,
        multi_batches: 0,
        occupancy: 0.0,
        worker_restarts: 0,
        quarantined: 0,
    })
}

/// One closed-loop client: exactly one request in flight at a time.
fn client_loop(
    addr: &str,
    num_vertices: usize,
    mode: Mode,
    seed: u64,
    requests: u64,
    stop: &AtomicBool,
) -> (Vec<u64>, u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let Ok(mut client) = Client::connect(addr) else {
        return (Vec::new(), 1);
    };
    let n = num_vertices as u32;
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for _ in 0..requests {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let source = rng.random_range(0..n);
        let op = match mode {
            Mode::Tree => 0,
            Mode::Many => 1,
            Mode::P2p => 2,
            Mode::Mixed => {
                if rng.random_bool(0.4) {
                    0
                } else if rng.random_bool(0.66) {
                    1
                } else {
                    2
                }
            }
        };
        let t = Instant::now();
        let result = match op {
            0 => client.tree(source, None).map(|_| ()),
            1 => {
                let targets: Vec<u32> =
                    (0..1 + rng.random_range(0..8)).map(|_| rng.random_range(0..n)).collect();
                client.many(source, &targets, None).map(|_| ())
            }
            _ => client.p2p(source, rng.random_range(0..n), None).map(|_| ()),
        };
        match result {
            Ok(()) => latencies.push(t.elapsed().as_nanos() as u64),
            Err(e) => {
                errors += 1;
                // A transport failure (server gone) ends this client.
                if e.kind == ErrorKind::Transport {
                    break;
                }
            }
        }
    }
    (latencies, errors)
}

// ---------------------------------------------------------------------------
// Chaos harness
// ---------------------------------------------------------------------------

/// Which hostile actors `--chaos` runs.
#[derive(Clone, Copy, Default)]
struct ChaosModes {
    slowloris: bool,
    disconnect: bool,
    garbage: bool,
    oversize: bool,
    burst: bool,
    swap: bool,
    /// The replicated-tier harness (child `phast_cli serve` processes +
    /// an in-process router). Its own run, never part of `all`.
    kill_backend: bool,
    /// The guarded-rollout harness: arms the `phast-metrics` fault seam
    /// and pushes a poisoned metric through a live watcher mid-burst.
    /// Its own run (it owns the watcher choreography), never part of
    /// `all`.
    poison_metric: bool,
}

impl ChaosModes {
    fn all() -> ChaosModes {
        ChaosModes {
            slowloris: true,
            disconnect: true,
            garbage: true,
            oversize: true,
            burst: true,
            swap: true,
            kill_backend: false,
            poison_metric: false,
        }
    }

    fn any_in_process(&self) -> bool {
        self.slowloris || self.disconnect || self.garbage || self.oversize || self.burst || self.swap
    }

    fn parse(list: &str) -> Result<ChaosModes, String> {
        let mut m = ChaosModes::default();
        for word in list.split(',').map(str::trim).filter(|w| !w.is_empty()) {
            match word {
                "all" => m = ChaosModes::all(),
                "slowloris" => m.slowloris = true,
                "disconnect" => m.disconnect = true,
                "garbage" => m.garbage = true,
                "oversize" => m.oversize = true,
                "burst" => m.burst = true,
                "swap" => m.swap = true,
                "kill-backend" => m.kill_backend = true,
                "poison-metric" => m.poison_metric = true,
                other => {
                    return Err(format!(
                        "unknown chaos mode `{other}` \
                         (slowloris|disconnect|garbage|oversize|burst|swap|kill-backend|\
                         poison-metric|all)"
                    ))
                }
            }
        }
        if !(m.any_in_process() || m.kill_backend || m.poison_metric) {
            return Err("--chaos-modes named no modes".into());
        }
        Ok(m)
    }

    fn names(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.slowloris {
            v.push("slowloris");
        }
        if self.disconnect {
            v.push("disconnect");
        }
        if self.garbage {
            v.push("garbage");
        }
        if self.oversize {
            v.push("oversize");
        }
        if self.burst {
            v.push("burst");
        }
        if self.swap {
            v.push("swap");
        }
        if self.kill_backend {
            v.push("kill-backend");
        }
        if self.poison_metric {
            v.push("poison-metric");
        }
        v
    }
}

/// A scalar-Dijkstra tree the well-behaved clients check answers against.
struct RefTree {
    source: u32,
    dist: Vec<u32>,
}

/// Reference tables per metric epoch. `sets[0]` is the base metric
/// (epoch 1); `sets[1..]` are the perturbed variants the swap actor
/// cycles through, so epoch `e >= 2` was customized from variant
/// `(e - 2) % (sets.len() - 1)`. Every set covers the same sources in
/// the same order, so a client can pick the source first and resolve the
/// expected distances from the reply's epoch stamp afterwards.
struct RefSets {
    sets: Vec<Vec<RefTree>>,
}

impl RefSets {
    fn for_epoch(&self, epoch: u64) -> &[RefTree] {
        if epoch <= 1 || self.sets.len() == 1 {
            &self.sets[0]
        } else {
            &self.sets[1 + (epoch as usize - 2) % (self.sets.len() - 1)]
        }
    }
}

/// The base graph with a perturbed metric's weights written over its arcs
/// — what the scalar-Dijkstra oracle for that metric runs on.
fn reweight(g: &Graph, m: &phast_metrics::MetricWeights) -> Graph {
    let arcs = g
        .forward()
        .arcs()
        .iter()
        .zip(&m.weights)
        .map(|(a, &w)| phast_graph::Arc::new(a.head, w))
        .collect();
    Graph::from_csr(phast_graph::Csr::from_raw(g.forward().first().to_vec(), arcs))
}

/// What one well-behaved client saw during the storm.
struct WbOutcome {
    ok: u64,
    failed: u64,
    samples: Vec<String>,
}

/// Sleeps in short slices so actors notice `stop` promptly; returns false
/// once `stop` is set.
fn nap(stop: &AtomicBool, total: Duration) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return true;
        }
        std::thread::sleep(left.min(Duration::from_millis(10)));
    }
}

fn spawn_named<T: Send + 'static>(
    name: String,
    f: impl FnOnce() -> T + Send + 'static,
) -> Result<std::thread::JoinHandle<T>, String> {
    std::thread::Builder::new()
        .name(name)
        .spawn(f)
        .map_err(|e| format!("cannot spawn chaos thread: {e}"))
}

/// Runs the fault-injection harness: hostile actors and well-behaved
/// clients share one self-hosted server; the run fails unless the
/// well-behaved traffic stayed exact and the hardening counters prove the
/// hostile traffic was absorbed.
fn run_chaos(
    graph: &Graph,
    cfg: ServeConfig,
    seed: u64,
    duration: Duration,
    wb_clients: usize,
    modes: ChaosModes,
    json: bool,
) -> Result<(), String> {
    let n = graph.num_vertices() as u32;
    if n < 2 {
        return Err("--chaos needs at least 2 vertices".into());
    }
    let max_conns = cfg.max_conns;
    let io_timeout = cfg.io_timeout;
    let max_line_bytes = cfg.max_line_bytes;
    eprintln!(
        "chaos: {duration:?} run, modes [{}], max-conns {max_conns}, io-timeout {io_timeout:?}, \
         max-line-bytes {max_line_bytes}, shed-depth {}",
        modes.names().join(","),
        cfg.shed_queue_depth
    );

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00C0_FFEE);
    let sources: Vec<u32> = (0..8).map(|_| rng.random_range(0..n)).collect();
    let ref_set = |g: &Graph| -> Vec<RefTree> {
        sources
            .iter()
            .map(|&source| RefTree {
                source,
                dist: shortest_paths(g.forward(), source).dist,
            })
            .collect()
    };
    let mut refs = RefSets {
        sets: vec![ref_set(graph)],
    };

    // The swap actor's ammunition: K perturbed metrics, customized up
    // front (the storm should measure swap latency, not customization),
    // each with its own independent Dijkstra reference table.
    let mut variants: Vec<(Arc<phast_core::Phast>, Arc<phast_ch::Hierarchy>)> = Vec::new();
    if modes.swap {
        let h = phast_ch::contract_graph(graph, &phast_ch::ContractionConfig::default());
        let customizer = phast_metrics::MetricCustomizer::new(graph.clone(), &h)
            .map_err(|e| format!("freezing the topology for the swap actor: {e}"))?;
        for k in 0..3u64 {
            let m = phast_metrics::MetricWeights::perturbed(
                graph,
                "chaos",
                k + 1,
                seed ^ (0x51AB << 8) ^ k,
            );
            let (p, ch) = customizer
                .build(&m)
                .map_err(|e| format!("customizing swap variant {k}: {e}"))?;
            refs.sets.push(ref_set(&reweight(graph, &m)));
            variants.push((Arc::new(p), Arc::new(ch)));
        }
    }
    let refs = Arc::new(refs);

    let service = Service::for_graph(graph, cfg);
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0")
        .map_err(|e| format!("cannot bind loopback: {e}"))?;
    let addr = server.local_addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let mut hostile = Vec::new();
    if modes.slowloris {
        // Dribble slower than the server's I/O timeout so every
        // connection gets reaped.
        let gap = io_timeout + Duration::from_millis(300);
        for i in 0..2 {
            let (addr, stop) = (addr.clone(), Arc::clone(&stop));
            hostile.push(spawn_named(format!("chaos-slowloris-{i}"), move || {
                chaos_slowloris(&addr, gap, &stop)
            })?);
        }
    }
    if modes.disconnect {
        let (addr, stop) = (addr.clone(), Arc::clone(&stop));
        hostile.push(spawn_named("chaos-disconnect".into(), move || {
            chaos_disconnect(&addr, &stop)
        })?);
    }
    if modes.garbage {
        let (addr, stop) = (addr.clone(), Arc::clone(&stop));
        let s = seed.wrapping_add(0xBAD);
        hostile.push(spawn_named("chaos-garbage".into(), move || {
            chaos_garbage(&addr, s, &stop)
        })?);
    }
    if modes.oversize {
        let (addr, stop) = (addr.clone(), Arc::clone(&stop));
        hostile.push(spawn_named("chaos-oversize".into(), move || {
            chaos_oversize(&addr, max_line_bytes, &stop)
        })?);
    }
    if modes.burst {
        let (addr, stop) = (addr.clone(), Arc::clone(&stop));
        let s = seed.wrapping_add(0xB00);
        hostile.push(spawn_named("chaos-burst".into(), move || {
            chaos_burst(&addr, n, s, &stop)
        })?);
    }
    if modes.swap {
        // Not hostile traffic, but the same lifecycle: cycle the
        // precomputed customizations through `swap_epoch` mid-storm, so
        // in-flight well-behaved requests straddle metric boundaries.
        let (service, stop) = (Arc::clone(&service), Arc::clone(&stop));
        let variants = std::mem::take(&mut variants);
        hostile.push(spawn_named("chaos-swap".into(), move || {
            let mut k = 0usize;
            while nap(&stop, Duration::from_millis(300)) {
                let (p, h) = &variants[k % variants.len()];
                if let Err(e) = service.swap_epoch(Arc::clone(p), Some(Arc::clone(h))) {
                    // Shutdown raced the last swap; anything else is a bug
                    // the exactness check below would mask.
                    eprintln!("chaos-swap: swap rejected: {e:?}");
                    return;
                }
                k += 1;
            }
        })?);
    }

    let mut wb = Vec::new();
    for c in 0..wb_clients.max(1) {
        let addr = addr.clone();
        let refs = Arc::clone(&refs);
        let stop = Arc::clone(&stop);
        let s = seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9);
        wb.push(spawn_named(format!("chaos-wb-{c}"), move || {
            chaos_wb_client(&addr, &refs, s, &stop)
        })?);
    }

    // The main thread doubles as the bounded-resources monitor: live
    // connections must never exceed the configured cap.
    let start = Instant::now();
    let mut peak_live = 0usize;
    while start.elapsed() < duration {
        peak_live = peak_live.max(server.live_connections());
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::SeqCst);

    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut samples = Vec::new();
    for h in wb {
        let o = h
            .join()
            .map_err(|_| "well-behaved client panicked".to_string())?;
        ok += o.ok;
        failed += o.failed;
        samples.extend(o.samples);
    }
    for h in hostile {
        let _ = h.join();
    }

    // The service must still be healthy after the storm: a fresh client
    // gets exact answers (for whatever metric epoch is serving by now).
    let mut probe =
        Client::connect(&addr).map_err(|e| format!("post-chaos connect failed: {e}"))?;
    let got = probe
        .tree(refs.sets[0][0].source, None)
        .map_err(|e| format!("post-chaos tree failed: {:?}: {}", e.kind, e.message))?;
    if got != refs.for_epoch(probe.last_epoch().unwrap_or(1))[0].dist {
        return Err("post-chaos answers diverged from the reference".into());
    }
    drop(probe);

    server.shutdown();
    let stats = service.stats();

    let mut r = Report::new("loadgen chaos");
    r.push_count("wb_ok", ok)
        .push_count("wb_failed", failed)
        .push_count("peak_live_connections", peak_live as u64)
        .push_count("max_conns", max_conns as u64)
        .push_count("served", stats.served())
        .push_count("batches", stats.batches())
        .push_count("timed_out_connections", stats.timed_out_connections())
        .push_count("rejected_invalid", stats.rejected_invalid())
        .push_count("shed_overload", stats.shed_overload())
        .push_count("rejected_queue_full", stats.rejected_queue_full())
        .push_count("refused_busy", stats.refused_busy())
        .push_count("accept_errors", stats.accept_errors())
        .push_count("deadline_misses", stats.deadline_misses())
        .push_count("metric_swaps", stats.metric_swaps())
        .push_count("queries_on_stale_metric", stats.queries_on_stale_metric());
    if json {
        println!("{}", serde_json::to_string(&r).map_err(|e| e.to_string())?);
    } else {
        phast_bench::report::report_to_table(&r).print();
    }

    let mut problems = Vec::new();
    if ok == 0 {
        problems.push("no well-behaved request completed".to_string());
    }
    if failed > 0 {
        problems.push(format!(
            "{failed} well-behaved request(s) failed or diverged, e.g. {}",
            samples.first().map(String::as_str).unwrap_or("<no sample>")
        ));
    }
    if peak_live > max_conns {
        problems.push(format!(
            "live connections peaked at {peak_live} > --max-conns {max_conns}"
        ));
    }
    if modes.slowloris && stats.timed_out_connections() == 0 {
        problems.push("slowloris ran but timed_out_connections == 0".to_string());
    }
    if (modes.garbage || modes.oversize) && stats.rejected_invalid() == 0 {
        problems.push("garbage/oversize ran but rejected_invalid == 0".to_string());
    }
    if modes.burst && stats.shed_overload() + stats.rejected_queue_full() == 0 {
        problems
            .push("burst ran but nothing was shed (shed_overload + queue_full == 0)".to_string());
    }
    if modes.swap && stats.metric_swaps() == 0 {
        problems.push("swap actor ran but metric_swaps == 0".to_string());
    }
    if !problems.is_empty() {
        return Err(format!("chaos check failed: {}", problems.join("; ")));
    }
    eprintln!(
        "chaos ok: {ok} well-behaved requests all exact; {} connection(s) reaped, \
         {} invalid line(s) rejected, {} request(s) shed, {} metric swap(s), \
         peak {peak_live}/{max_conns} conns",
        stats.timed_out_connections(),
        stats.rejected_invalid(),
        stats.shed_overload() + stats.rejected_queue_full(),
        stats.metric_swaps(),
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Poison-metric chaos: the guarded rollout behind a live server
// ---------------------------------------------------------------------------

/// Atomically replaces `path` with `m` serialized as JSON (sibling temp
/// file + rename), so the watcher never observes a torn write.
fn write_metric_file(
    path: &std::path::Path,
    m: &phast_metrics::MetricWeights,
) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    let body = serde_json::to_string(m).map_err(|e| format!("serializing metric: {e}"))?;
    std::fs::write(&tmp, body).map_err(|e| format!("writing `{}`: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("publishing `{}`: {e}", path.display()))
}

/// The guarded-rollout chaos gate (`--chaos-modes poison-metric`): a
/// metric watcher runs behind the live self-hosted server while
/// well-behaved clients burst against it. Two honest metrics are dropped
/// mid-burst and must publish (epochs 2 and 3); between them a *poisoned*
/// metric — honest on disk, corrupted inside the customizer by the armed
/// [`phast_metrics::CANARY_FAULT_ENV`] seam — is dropped and must be
/// canary-rejected without the epoch moving. The run fails unless every
/// well-behaved reply stayed exact against its admission-epoch reference,
/// the poisoned metric never answered a single query, and the
/// canary/quarantine counters registered.
fn run_chaos_poison_metric(
    graph: &Graph,
    cfg: ServeConfig,
    seed: u64,
    duration: Duration,
    wb_clients: usize,
    json: bool,
) -> Result<(), String> {
    let n = graph.num_vertices() as u32;
    if n < 2 {
        return Err("poison-metric chaos needs at least 2 vertices".into());
    }
    // Arm the fault seam before the customizer (and its rayon pool)
    // exists: from here on, any metric named `poison` is silently
    // corrupted inside `MetricCustomizer::build`.
    std::env::set_var(phast_metrics::CANARY_FAULT_ENV, "poison");

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00C0_FFEE);
    let sources: Vec<u32> = (0..8).map(|_| rng.random_range(0..n)).collect();
    let ref_set = |g: &Graph| -> Vec<RefTree> {
        sources
            .iter()
            .map(|&source| RefTree {
                source,
                dist: shortest_paths(g.forward(), source).dist,
            })
            .collect()
    };

    eprintln!("poison-metric: freezing the customization topology...");
    let h = phast_ch::contract_graph(graph, &phast_ch::ContractionConfig::default());
    let customizer = Arc::new(
        phast_metrics::MetricCustomizer::new(graph.clone(), &h)
            .map_err(|e| format!("freezing the topology: {e}"))?,
    );

    // The poisoned file is indistinguishable from an honest one on disk —
    // same schema, valid weights; only the armed seam (keyed on the
    // metric *name*) corrupts it, and only the canary can notice.
    let honest1 = phast_metrics::MetricWeights::perturbed(graph, "honest", 1, seed ^ 0xA1);
    let honest2 = phast_metrics::MetricWeights::perturbed(graph, "honest", 2, seed ^ 0xA2);
    let poison = phast_metrics::MetricWeights::perturbed(graph, "poison", 1, seed ^ 0xBAD);

    // Epoch → reference mapping: epoch 1 = base, 2 = honest v1,
    // 3 = honest v2. Valid precisely because the poisoned metric must
    // never publish — if it ever does, its replies get checked against
    // the honest table for that epoch and fail loudly.
    let refs = Arc::new(RefSets {
        sets: vec![
            ref_set(graph),
            ref_set(&reweight(graph, &honest1)),
            ref_set(&reweight(graph, &honest2)),
        ],
    });

    let service = Service::for_graph(graph, cfg);
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0")
        .map_err(|e| format!("cannot bind loopback: {e}"))?;
    let addr = server.local_addr().to_string();

    let metric_path =
        std::env::temp_dir().join(format!("phast-poison-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&metric_path);
    let mut watcher = MetricWatcher::spawn_with(
        Arc::clone(&service),
        Arc::clone(&customizer),
        metric_path.clone(),
        Duration::from_millis(25),
        WatchConfig::default(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mut wb = Vec::new();
    for c in 0..wb_clients.max(1) {
        let addr = addr.clone();
        let refs = Arc::clone(&refs);
        let stop = Arc::clone(&stop);
        let s = seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9);
        wb.push(spawn_named(format!("chaos-wb-{c}"), move || {
            chaos_wb_client(&addr, &refs, s, &stop)
        })?);
    }

    // Choreography: a slice of burst on each epoch, with the poisoned
    // drop sandwiched between the two honest ones.
    let slice = duration / 5;
    let grace = Duration::from_secs(10);
    std::thread::sleep(slice);
    write_metric_file(&metric_path, &honest1)?;
    wait_for("honest v1 to publish (epoch 2)", grace, || {
        service.epoch_id() >= 2
    })?;

    std::thread::sleep(slice);
    write_metric_file(&metric_path, &poison)?;
    wait_for("the canary to reject the poisoned metric", grace, || {
        service.stats().canary_failures() >= 1
    })?;
    if service.epoch_id() != 2 {
        return Err(format!(
            "the poisoned metric moved the epoch to {} — it was served live",
            service.epoch_id()
        ));
    }

    std::thread::sleep(slice);
    write_metric_file(&metric_path, &honest2)?;
    wait_for("honest v2 to publish (epoch 3)", grace, || {
        service.epoch_id() >= 3
    })?;

    std::thread::sleep(slice);
    stop.store(true, Ordering::SeqCst);
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut samples = Vec::new();
    for h in wb {
        let o = h
            .join()
            .map_err(|_| "well-behaved client panicked".to_string())?;
        ok += o.ok;
        failed += o.failed;
        samples.extend(o.samples);
    }
    watcher.shutdown();

    // Post-storm health probe, exact for whatever epoch is serving.
    let mut probe =
        Client::connect(&addr).map_err(|e| format!("post-chaos connect failed: {e}"))?;
    let got = probe
        .tree(refs.sets[0][0].source, None)
        .map_err(|e| format!("post-chaos tree failed: {:?}: {}", e.kind, e.message))?;
    if got != refs.for_epoch(probe.last_epoch().unwrap_or(1))[0].dist {
        return Err("post-chaos answers diverged from the reference".into());
    }
    drop(probe);

    server.shutdown();
    let stats = service.stats();
    let final_epoch = service.epoch_id();
    std::env::remove_var(phast_metrics::CANARY_FAULT_ENV);
    let _ = std::fs::remove_file(&metric_path);

    let mut r = Report::new("loadgen chaos poison-metric");
    r.push_count("wb_ok", ok)
        .push_count("wb_failed", failed)
        .push_count("served", stats.served())
        .push_count("metric_swaps", stats.metric_swaps())
        .push_count("canary_failures", stats.canary_failures())
        .push_count("quarantined_metrics", stats.quarantined_metrics())
        .push_count("epoch_rollbacks", stats.epoch_rollbacks())
        .push_count("guard_trips", stats.guard_trips())
        .push_count("watch_errors", stats.watch_errors())
        .push_count("queries_on_stale_metric", stats.queries_on_stale_metric())
        .push_count("final_epoch", final_epoch);
    if json {
        println!("{}", serde_json::to_string(&r).map_err(|e| e.to_string())?);
    } else {
        phast_bench::report::report_to_table(&r).print();
    }

    let mut problems = Vec::new();
    if ok == 0 {
        problems.push("no well-behaved request completed".to_string());
    }
    if failed > 0 {
        problems.push(format!(
            "{failed} well-behaved request(s) failed or diverged, e.g. {}",
            samples.first().map(String::as_str).unwrap_or("<no sample>")
        ));
    }
    if stats.canary_failures() == 0 {
        problems.push("the poisoned metric was never canary-rejected".to_string());
    }
    if stats.quarantined_metrics() == 0 {
        problems.push("nothing was quarantined (quarantined_metrics == 0)".to_string());
    }
    if stats.canary_failures() + stats.epoch_rollbacks() == 0 {
        problems.push("canary_failures + epoch_rollbacks == 0".to_string());
    }
    if stats.metric_swaps() != 2 {
        problems.push(format!(
            "expected exactly the 2 honest publishes, saw metric_swaps == {}",
            stats.metric_swaps()
        ));
    }
    if final_epoch != 3 {
        problems.push(format!(
            "final epoch is {final_epoch}, expected 3 — a poisoned or duplicate publish \
             slipped through"
        ));
    }
    if !problems.is_empty() {
        return Err(format!("poison-metric check failed: {}", problems.join("; ")));
    }
    eprintln!(
        "poison-metric ok: {ok} well-behaved requests all exact across epochs 1→3; \
         poisoned metric canary-rejected ({} canary failure(s), {} quarantined), \
         epoch never touched it",
        stats.canary_failures(),
        stats.quarantined_metrics(),
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Kill-backend chaos: replicated serve tier behind the failover router
// ---------------------------------------------------------------------------

/// One `phast_cli serve` replica child process and the address it bound.
/// Dropping it SIGKILLs and reaps the child, so no replica outlives the
/// harness on any exit path.
struct ServeChild {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

impl ServeChild {
    /// SIGKILL — no graceful drain, exactly the failure the router must
    /// absorb.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Resolves a sibling binary of the running `loadgen` executable.
fn sibling_binary(name: &str) -> Result<std::path::PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| "loadgen binary has no parent directory".to_string())?;
    let p = dir.join(name);
    if !p.exists() {
        return Err(format!(
            "`{}` not found next to loadgen; build the workspace binaries first",
            p.display()
        ));
    }
    Ok(p)
}

/// Spawns one serve replica on `addr` (may be `127.0.0.1:0`) and waits
/// for its `listening on ...` banner to learn the bound address. A child
/// that exits first (e.g. the port is still held) is reaped and reported.
fn spawn_serve_child(
    bin: &std::path::Path,
    inst: &std::path::Path,
    addr: &str,
) -> Result<ServeChild, String> {
    use std::io::BufRead;
    let mut child = std::process::Command::new(bin)
        .arg("serve")
        .arg("--instance")
        .arg(inst)
        .arg("--addr")
        .arg(addr)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn `{}`: {e}", bin.display()))?;
    let stderr = child.stderr.take().expect("stderr was piped");
    let mut reader = std::io::BufReader::new(stderr);
    let mut log = String::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("replica exited before listening; its output:\n{log}"));
            }
            Ok(_) => {
                if let Some(rest) = line.trim().strip_prefix("listening on ") {
                    let bound = rest
                        .parse()
                        .map_err(|e| format!("unparseable listen banner `{rest}`: {e}"))?;
                    // Keep draining stderr so the child can never block
                    // on a full pipe.
                    std::thread::spawn(move || {
                        let _ = std::io::copy(&mut reader, &mut std::io::sink());
                    });
                    return Ok(ServeChild { child, addr: bound });
                }
                log.push_str(&line);
            }
        }
    }
}

/// Restarts a killed replica on its old (fixed) port. The port may linger
/// briefly (straggling sockets), so bind failures retry on a short loop.
fn respawn_serve_child(
    bin: &std::path::Path,
    inst: &std::path::Path,
    addr: std::net::SocketAddr,
) -> Result<ServeChild, String> {
    let mut last = String::new();
    for _ in 0..40 {
        match spawn_serve_child(bin, inst, &addr.to_string()) {
            Ok(c) => return Ok(c),
            Err(e) => {
                last = e;
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
    Err(format!("could not restart replica on {addr}: {last}"))
}

/// Polls `cond` until it holds or `timeout` elapses.
fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) -> Result<(), String> {
    let t0 = Instant::now();
    while !cond() {
        if t0.elapsed() >= timeout {
            return Err(format!("timed out waiting for {what}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}

/// The replicated-tier chaos gate (`--chaos-modes kill-backend`): two
/// real serve replicas behind the failover router, one SIGKILLed and
/// restarted mid-burst. Every well-behaved reply must stay exact, the
/// kill must cost the clients nothing (failover), and the restarted
/// replica must rejoin rotation.
fn run_chaos_killbackend(
    graph: &Graph,
    seed: u64,
    duration: Duration,
    wb_clients: usize,
    json: bool,
) -> Result<(), String> {
    let n = graph.num_vertices() as u32;
    if n < 2 {
        return Err("kill-backend chaos needs at least 2 vertices".into());
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00C0_FFEE);
    let sources: Vec<u32> = (0..8).map(|_| rng.random_range(0..n)).collect();
    let refs = Arc::new(RefSets {
        sets: vec![sources
            .iter()
            .map(|&source| RefTree {
                source,
                dist: shortest_paths(graph.forward(), source).dist,
            })
            .collect()],
    });

    // Preprocess once; both replicas serve the same artifact, so child
    // startup is an (mmap) load, not a recontraction.
    let bin = sibling_binary("phast_cli")?;
    let inst = std::env::temp_dir().join(format!("phast-chaos-{}.phast", std::process::id()));
    let h = phast_ch::contract_graph(graph, &phast_ch::ContractionConfig::default());
    let p = phast_core::PhastBuilder::new().build_with_hierarchy(graph, &h);
    phast_store::write_instance(&inst, &p, Some(&h))
        .map_err(|e| format!("cannot write replica artifact `{}`: {e}", inst.display()))?;
    let result = run_chaos_killbackend_inner(&bin, &inst, &refs, duration, wb_clients, json, seed);
    let _ = std::fs::remove_file(&inst);
    result
}

fn run_chaos_killbackend_inner(
    bin: &std::path::Path,
    inst: &std::path::Path,
    refs: &Arc<RefSets>,
    duration: Duration,
    wb_clients: usize,
    json: bool,
    seed: u64,
) -> Result<(), String> {
    use phast_router::HealthState;
    let mut victim = spawn_serve_child(bin, inst, "127.0.0.1:0")?;
    let survivor = spawn_serve_child(bin, inst, "127.0.0.1:0")?;
    let router = phast_router::Router::spawn(
        phast_router::RouterConfig {
            backends: vec![victim.addr, survivor.addr],
            probe_interval: Duration::from_millis(50),
            eject_after: 2,
            halfopen_after: Duration::from_millis(200),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            max_failovers: 4,
            default_budget: Duration::from_secs(4),
            ..phast_router::RouterConfig::default()
        },
        "127.0.0.1:0",
    )
    .map_err(|e| format!("cannot bind the router: {e}"))?;
    let addr = router.local_addr().to_string();
    eprintln!(
        "chaos kill-backend: replicas {} (victim) and {} behind router {addr}; {duration:?} storm",
        victim.addr, survivor.addr
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mut wb = Vec::new();
    for c in 0..wb_clients.max(1) {
        let addr = addr.clone();
        let refs = Arc::clone(refs);
        let stop = Arc::clone(&stop);
        let s = seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9);
        wb.push(spawn_named(format!("chaos-wb-{c}"), move || {
            chaos_wb_client(&addr, &refs, s, &stop)
        })?);
    }

    // Let the storm ramp, then SIGKILL the victim mid-burst.
    std::thread::sleep((duration / 4).max(Duration::from_millis(300)));
    eprintln!("chaos kill-backend: SIGKILL {}", victim.addr);
    let victim_addr = victim.addr;
    victim.kill();
    wait_for("ejection of the killed replica", Duration::from_secs(10), || {
        router.pool().backends()[0].state() == HealthState::Ejected
    })?;
    eprintln!("chaos kill-backend: {} ejected; restarting it", victim_addr);
    let victim = respawn_serve_child(bin, inst, victim_addr)?;
    wait_for("half-open recovery of the restart", Duration::from_secs(15), || {
        router.pool().backends()[0].state() == HealthState::Healthy
    })?;
    eprintln!("chaos kill-backend: {} back in rotation", victim.addr);

    // Keep the storm going on the recovered pair before calling it.
    std::thread::sleep((duration / 2).max(Duration::from_millis(500)));
    stop.store(true, Ordering::SeqCst);
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut samples = Vec::new();
    for handle in wb {
        let o = handle
            .join()
            .map_err(|_| "well-behaved client panicked".to_string())?;
        ok += o.ok;
        failed += o.failed;
        samples.extend(o.samples);
    }

    // The tier must still be healthy end to end: a fresh client through
    // the router gets an exact tree.
    let mut probe =
        Client::connect(&addr).map_err(|e| format!("post-chaos connect failed: {e}"))?;
    let got = probe
        .tree(refs.sets[0][0].source, None)
        .map_err(|e| format!("post-chaos tree failed: {:?}: {}", e.kind, e.message))?;
    if got != refs.sets[0][0].dist {
        return Err("post-chaos answers diverged from the reference".into());
    }
    drop(probe);

    let stats = Arc::clone(router.stats());
    router.shutdown();

    let mut r = Report::new("loadgen chaos kill-backend");
    r.push_count("wb_ok", ok)
        .push_count("wb_failed", failed)
        .push_count("router_forwarded", stats.forwarded())
        .push_count("router_answered", stats.answered())
        .push_count("router_failovers", stats.failovers())
        .push_count("router_ejections", stats.ejections())
        .push_count("router_recoveries", stats.recoveries())
        .push_count("router_drained_conns", stats.drained_conns())
        .push_count("router_retries_exhausted", stats.retries_exhausted())
        .push_count("router_no_backend", stats.no_backend())
        .push_count("router_probes", stats.probes())
        .push_count("router_probe_failures", stats.probe_failures());
    if json {
        println!("{}", serde_json::to_string(&r).map_err(|e| e.to_string())?);
    } else {
        phast_bench::report::report_to_table(&r).print();
    }

    let mut problems = Vec::new();
    if ok == 0 {
        problems.push("no well-behaved request completed".to_string());
    }
    if failed > 0 {
        problems.push(format!(
            "{failed} well-behaved request(s) failed or diverged, e.g. {}",
            samples.first().map(String::as_str).unwrap_or("<no sample>")
        ));
    }
    if stats.failovers() == 0 {
        problems.push("the kill forced no failover (router_failovers == 0)".to_string());
    }
    if stats.ejections() == 0 {
        problems.push("the kill registered no ejection (router_ejections == 0)".to_string());
    }
    if stats.recoveries() == 0 {
        problems.push("the restart never rejoined rotation (router_recoveries == 0)".to_string());
    }
    if !problems.is_empty() {
        return Err(format!("kill-backend chaos check failed: {}", problems.join("; ")));
    }
    eprintln!(
        "kill-backend chaos ok: {ok} well-behaved requests all exact through a SIGKILL; \
         {} failover(s), {} ejection(s), {} recovery(e|ies), {} pooled conn(s) drained",
        stats.failovers(),
        stats.ejections(),
        stats.recoveries(),
        stats.drained_conns(),
    );
    Ok(())
}

/// One well-behaved client under chaos: retrying transport, in-deadline
/// requests, every answer differentially checked against the reference
/// *for the metric epoch stamped on the reply* — a reply computed on a
/// freshly swapped metric must match that metric's Dijkstra oracle, and
/// one admitted before a swap must match its admission epoch's.
fn chaos_wb_client(addr: &str, refs: &RefSets, seed: u64, stop: &AtomicBool) -> WbOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = WbOutcome {
        ok: 0,
        failed: 0,
        samples: Vec::new(),
    };
    let mut client = match Client::connect_with(addr, ClientConfig::retrying(8)) {
        Ok(c) => c,
        Err(e) => {
            out.failed = 1;
            out.samples.push(format!("connect failed: {e}"));
            return out;
        }
    };
    let deadline = Some(3_000);
    let num_vertices = refs.sets[0][0].dist.len() as u32;
    let mut turn = 0u64;
    while !stop.load(Ordering::SeqCst) {
        let si = rng.random_range(0..refs.sets[0].len() as u32) as usize;
        let source = refs.sets[0][si].source;
        // The reference table is picked *after* the reply: the `epoch`
        // stamp says which metric the server answered under.
        let verdict: Result<(), String> = match turn % 3 {
            0 => match client.tree(source, deadline) {
                Ok(d) => {
                    let r = &refs.for_epoch(client.last_epoch().unwrap_or(1))[si];
                    if d == r.dist {
                        Ok(())
                    } else {
                        Err("tree distances diverged from the epoch reference".into())
                    }
                }
                Err(e) => Err(format!("tree failed: {:?}: {}", e.kind, e.message)),
            },
            1 => {
                let targets: Vec<u32> =
                    (0..4).map(|_| rng.random_range(0..num_vertices)).collect();
                match client.many(source, &targets, deadline) {
                    Ok(d) => {
                        let r = &refs.for_epoch(client.last_epoch().unwrap_or(1))[si];
                        let want: Vec<u32> =
                            targets.iter().map(|&t| r.dist[t as usize]).collect();
                        if d == want {
                            Ok(())
                        } else {
                            Err("many distances diverged from the epoch reference".into())
                        }
                    }
                    Err(e) => Err(format!("many failed: {:?}: {}", e.kind, e.message)),
                }
            }
            _ => {
                let t = rng.random_range(0..num_vertices);
                match client.p2p(source, t, deadline) {
                    Ok(d) => {
                        let r = &refs.for_epoch(client.last_epoch().unwrap_or(1))[si];
                        if d == r.dist[t as usize] {
                            Ok(())
                        } else {
                            Err("p2p distance diverged from the epoch reference".into())
                        }
                    }
                    Err(e) => Err(format!("p2p failed: {:?}: {}", e.kind, e.message)),
                }
            }
        };
        match verdict {
            Ok(()) => out.ok += 1,
            Err(msg) => {
                out.failed += 1;
                if out.samples.len() < 8 {
                    out.samples.push(format!(
                        "request {turn} (source {source}, epoch {:?}): {msg}",
                        client.last_epoch()
                    ));
                }
            }
        }
        turn += 1;
    }
    out
}

/// Dribbles bytes slower than the server's I/O timeout; every connection
/// should get reaped (`timed_out_connections`).
fn chaos_slowloris(addr: &str, gap: Duration, stop: &AtomicBool) {
    let line = b"{\"op\":\"tree\",\"source\":0}\n";
    while !stop.load(Ordering::SeqCst) {
        let Ok(mut s) = TcpStream::connect(addr) else {
            if !nap(stop, Duration::from_millis(50)) {
                return;
            }
            continue;
        };
        let _ = s.set_write_timeout(Some(Duration::from_millis(250)));
        for &b in line.iter().cycle() {
            // A failed write means the server reaped us — reconnect.
            if s.write_all(&[b]).is_err() {
                break;
            }
            if !nap(stop, gap) {
                return;
            }
        }
    }
}

/// Connects, writes part or all of a request, and vanishes mid-flight.
fn chaos_disconnect(addr: &str, stop: &AtomicBool) {
    let mut phase = 0u32;
    while !stop.load(Ordering::SeqCst) {
        if let Ok(mut s) = TcpStream::connect(addr) {
            match phase % 3 {
                0 => {
                    // Half a request line, then gone.
                    let _ = s.write_all(b"{\"op\":\"tree\",\"sou");
                }
                1 => {
                    // Full request, gone before the (large) reply is read.
                    let _ = s.write_all(b"{\"op\":\"tree\",\"source\":1}\n");
                }
                _ => {
                    // Full request, half the reply read, then gone.
                    let _ = s.write_all(b"{\"op\":\"p2p\",\"source\":1,\"target\":0}\n");
                    let _ = s.set_read_timeout(Some(Duration::from_millis(50)));
                    let mut buf = [0u8; 8];
                    let _ = s.read(&mut buf);
                }
            }
        }
        phase = phase.wrapping_add(1);
        if !nap(stop, Duration::from_millis(15)) {
            return;
        }
    }
}

/// Floods newline-terminated byte soup; every line must come back as a
/// typed `malformed` reply (`rejected_invalid`), never a crash.
fn chaos_garbage(addr: &str, seed: u64, stop: &AtomicBool) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    while !stop.load(Ordering::SeqCst) {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_millis(100)));
            let _ = s.set_write_timeout(Some(Duration::from_millis(250)));
            for _ in 0..8 {
                let len = 16 + rng.random_range(0..240) as usize;
                let mut line: Vec<u8> = (0..len)
                    .map(|_| {
                        let b = rng.random_range(1..256) as u8;
                        if b == b'\n' {
                            b'x'
                        } else {
                            b
                        }
                    })
                    .collect();
                line.push(b'\n');
                if s.write_all(&line).is_err() {
                    break;
                }
                let mut buf = [0u8; 512];
                let _ = s.read(&mut buf);
            }
        }
        if !nap(stop, Duration::from_millis(20)) {
            return;
        }
    }
}

/// Sends request lines far beyond `--max-line-bytes`; the server must
/// reply `malformed` and close without buffering the flood.
fn chaos_oversize(addr: &str, cap: usize, stop: &AtomicBool) {
    let blob = vec![b'a'; cap * 2];
    while !stop.load(Ordering::SeqCst) {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = s.write_all(&blob);
            let _ = s.write_all(b"\n");
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let mut buf = [0u8; 512];
            let _ = s.read(&mut buf);
        }
        if !nap(stop, Duration::from_millis(30)) {
            return;
        }
    }
}

/// Fires waves of concurrent connections that together push queue depth
/// past the shed threshold; sheds come back as typed `overloaded`
/// replies, not hangs.
fn chaos_burst(addr: &str, n: u32, seed: u64, stop: &AtomicBool) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    while !stop.load(Ordering::SeqCst) {
        let mut wave = Vec::new();
        for _ in 0..16 {
            let addr = addr.to_string();
            let src = rng.random_range(0..n);
            let dst = rng.random_range(0..n);
            if let Ok(h) = std::thread::Builder::new()
                .name("chaos-burst-conn".into())
                .spawn(move || burst_conn(&addr, src, dst))
            {
                wave.push(h);
            }
        }
        for h in wave {
            let _ = h.join();
        }
        if !nap(stop, Duration::from_millis(100)) {
            return;
        }
    }
}

/// One burst connection: pipelines a handful of p2p requests at once,
/// then drains whatever replies (answers or typed sheds) come back.
fn burst_conn(addr: &str, src: u32, dst: u32) {
    let Ok(mut s) = TcpStream::connect(addr) else {
        return;
    };
    let _ = s.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
    let mut batch = String::new();
    for _ in 0..10 {
        batch.push_str(&format!("{{\"op\":\"p2p\",\"source\":{src},\"target\":{dst}}}\n"));
    }
    if s.write_all(batch.as_bytes()).is_err() {
        return;
    }
    let mut buf = [0u8; 4096];
    let mut newlines = 0;
    while newlines < 10 {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => newlines += buf[..k].iter().filter(|&&b| b == b'\n').count(),
        }
    }
}
