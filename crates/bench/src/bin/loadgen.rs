//! `loadgen` — closed-loop load generator for the `phast-serve` batching
//! query service.
//!
//! ```text
//! loadgen [--vertices 2000] [--seed 7] [--clients 16] [--k 16]
//!         [--window-ms 2] [--workers 2] [--queue 1024] [--requests 200]
//!         [--duration-ms 0] [--mode mixed|tree|many|p2p] [--addr HOST:PORT]
//!         [--compare] [--smoke] [--inject-panic] [--json]
//! ```
//!
//! By default it self-hosts: it generates a synthetic road network, starts
//! a loopback server with the given scheduler configuration, drives it
//! with `--clients` closed-loop connections (each connection keeps exactly
//! one request in flight), and reports throughput, latency percentiles and
//! the server's batching counters for that `(clients, k, window)` cell.
//! With `--addr` it drives an external server instead and reports the
//! client-side numbers only.
//!
//! `--compare` runs the configured cell and a `k = 1` cell (both with one
//! worker, so the difference is batching, not thread parallelism) on the
//! same graph and emits one obs-schema JSON object with the time-per-tree
//! of each cell and the speedup ratio — the acceptance check that batching
//! actually pays.
//!
//! `--smoke` is the CI entry point: a short self-hosted run (2 s unless
//! `--duration-ms` says otherwise) that exits non-zero unless at least one
//! batch served two or more requests.
//!
//! `--inject-panic` is the supervision soak: mid-run, a dedicated
//! connection sends a request for a poisoned source the scheduler is
//! configured to panic on (via `ServeConfig::panic_on_source`), while the
//! regular clients steer clear of it. The run exits non-zero unless the
//! poisoned request came back as a typed `internal` error, the service
//! kept answering afterwards, and the server counted `worker_restarts >=
//! 1` — the end-to-end proof that a worker panic costs one batch, not the
//! service.

use phast_bench::cli::{parse_num, Flags};
use phast_graph::gen::{Metric, RoadNetworkConfig};
use phast_graph::Graph;
use phast_obs::Report;
use phast_serve::{Client, ErrorKind, ServeConfig, Server, Service};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    if let Err(e) = run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        eprintln!("error: {e}");
        exit(1);
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Mixed,
    Tree,
    Many,
    P2p,
}

/// What one cell run produced, client side and (self-hosted) server side.
struct CellOutcome {
    ok: u64,
    errors: u64,
    elapsed: Duration,
    /// Sorted request latencies in nanoseconds.
    latencies: Vec<u64>,
    served: u64,
    batches: u64,
    multi_batches: u64,
    occupancy: f64,
    worker_restarts: u64,
    quarantined: u64,
}

impl CellOutcome {
    fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((p / 100.0) * (self.latencies.len() - 1) as f64).round() as usize;
        Duration::from_nanos(self.latencies[idx])
    }

    /// Mean wall time per answered request — with closed-loop clients this
    /// is the service's inverse throughput, the paper's trees-per-second
    /// lever seen from outside.
    fn time_per_tree(&self) -> Duration {
        if self.ok == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.elapsed.as_nanos() / self.ok as u128) as u64)
        }
    }

    fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.elapsed.as_secs_f64()
        }
    }

    fn fill_report(&self, r: &mut Report, suffix: &str) {
        r.push_count(format!("requests_ok{suffix}"), self.ok)
            .push_count(format!("requests_err{suffix}"), self.errors)
            .push_time(format!("elapsed{suffix}"), self.elapsed)
            .push_ratio(format!("throughput_rps{suffix}"), self.throughput())
            .push_time(format!("time_per_tree{suffix}"), self.time_per_tree())
            .push_time(format!("latency_p50{suffix}"), self.percentile(50.0))
            .push_time(format!("latency_p90{suffix}"), self.percentile(90.0))
            .push_time(format!("latency_p99{suffix}"), self.percentile(99.0))
            .push_count(format!("served{suffix}"), self.served)
            .push_count(format!("batches{suffix}"), self.batches)
            .push_count(format!("multi_batches{suffix}"), self.multi_batches)
            .push_ratio(format!("mean_batch_occupancy{suffix}"), self.occupancy)
            .push_count(format!("worker_restarts{suffix}"), self.worker_restarts)
            .push_count(format!("quarantined_requests{suffix}"), self.quarantined);
    }
}

struct LoadSpec {
    clients: usize,
    requests: u64,
    duration: Option<Duration>,
    mode: Mode,
    seed: u64,
}

fn run(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(
        args,
        &[
            ("--vertices", true),
            ("--seed", true),
            ("--clients", true),
            ("--k", true),
            ("--window-ms", true),
            ("--workers", true),
            ("--queue", true),
            ("--requests", true),
            ("--duration-ms", true),
            ("--mode", true),
            ("--addr", true),
            ("--compare", false),
            ("--smoke", false),
            ("--inject-panic", false),
            ("--json", false),
        ],
    )?;
    let vertices: usize = parse_num(f.get("--vertices").unwrap_or("2000"), "--vertices")?;
    let seed: u64 = parse_num(f.get("--seed").unwrap_or("7"), "--seed")?;
    let clients: usize = parse_num(f.get("--clients").unwrap_or("16"), "--clients")?;
    let requests: u64 = parse_num(f.get("--requests").unwrap_or("200"), "--requests")?;
    let duration_ms: u64 = parse_num(f.get("--duration-ms").unwrap_or("0"), "--duration-ms")?;
    // `--compare` defaults to one-to-many requests: they cost a full tree
    // sweep server-side but have constant-size replies, so the measured
    // difference is the engine, not JSON encoding of n distances.
    let default_mode = if f.has("--compare") { "many" } else { "mixed" };
    let mode = match f.get("--mode").unwrap_or(default_mode) {
        "mixed" => Mode::Mixed,
        "tree" => Mode::Tree,
        "many" => Mode::Many,
        "p2p" => Mode::P2p,
        other => return Err(format!("unknown --mode `{other}` (mixed|tree|many|p2p)")),
    };
    let mut cfg = ServeConfig {
        max_k: parse_num(f.get("--k").unwrap_or("16"), "--k")?,
        window: Duration::from_millis(parse_num(
            f.get("--window-ms").unwrap_or("2"),
            "--window-ms",
        )?),
        queue_capacity: parse_num(f.get("--queue").unwrap_or("1024"), "--queue")?,
        workers: parse_num(f.get("--workers").unwrap_or("2"), "--workers")?,
        panic_on_source: None,
    };
    if clients == 0 {
        return Err("--clients must be positive".into());
    }
    if cfg.max_k == 0 || cfg.max_k > phast_core::simd::MAX_K {
        return Err(format!("--k must be in 1..={}", phast_core::simd::MAX_K));
    }
    let json = f.has("--json");
    let smoke = f.has("--smoke");
    let compare = f.has("--compare");
    let inject = f.has("--inject-panic");

    if f.has("--addr") && (smoke || compare || inject) {
        return Err("--smoke/--compare/--inject-panic self-host a server; drop --addr".into());
    }
    if inject && compare {
        return Err("--inject-panic perturbs timings; drop --compare".into());
    }

    let spec = LoadSpec {
        clients,
        requests,
        duration: match (duration_ms, smoke) {
            (0, true) => Some(Duration::from_millis(2000)),
            (0, false) => None,
            (ms, _) => Some(Duration::from_millis(ms)),
        },
        mode,
        seed,
    };

    if let Some(addr) = f.get("--addr") {
        // External server: client-side numbers only.
        let probe = Client::connect(addr).map_err(|e| format!("cannot connect `{addr}`: {e}"))?;
        drop(probe);
        let outcome = drive(addr, vertices, &spec, "external")?;
        return emit_single(&outcome, &cfg, &spec, json);
    }

    eprintln!("generating {vertices}-vertex synthetic road network (seed {seed})...");
    let net = RoadNetworkConfig::europe_like(vertices, seed, Metric::TravelTime).build();

    if inject {
        // Poison the highest-ID vertex; regular clients draw sources and
        // targets from 0..n-1, so only the injector connection trips it.
        let n = net.num_vertices();
        if n < 2 {
            return Err("--inject-panic needs at least 2 vertices".into());
        }
        cfg.panic_on_source = Some((n - 1) as u32);
    }

    if compare {
        let mut cfg_batched = cfg.clone();
        cfg_batched.workers = 1;
        let cfg_scalar = ServeConfig {
            max_k: 1,
            workers: 1,
            ..cfg.clone()
        };
        let batched = run_cell(&net.graph, cfg_batched.clone(), &spec, "batched")?;
        let scalar = run_cell(&net.graph, cfg_scalar, &spec, "scalar")?;
        let speedup = if batched.time_per_tree().is_zero() {
            0.0
        } else {
            scalar.time_per_tree().as_secs_f64() / batched.time_per_tree().as_secs_f64()
        };
        let mut r = Report::new("loadgen compare");
        r.push_count("vertices", net.num_vertices() as u64)
            .push_count("clients", spec.clients as u64)
            .push_count("k_batched", cfg_batched.max_k as u64)
            .push_time("batch_window", cfg_batched.window)
            .push_ratio("speedup_time_per_tree", speedup);
        batched.fill_report(&mut r, "_batched");
        scalar.fill_report(&mut r, "_scalar");
        // The acceptance comparison is always machine-readable.
        println!("{}", serde_json::to_string(&r).map_err(|e| e.to_string())?);
        eprintln!(
            "time/tree: batched(k={}) {:.2?} vs scalar(k=1) {:.2?} -> speedup {speedup:.2}x \
             (occupancy {:.2})",
            cfg_batched.max_k,
            batched.time_per_tree(),
            scalar.time_per_tree(),
            batched.occupancy,
        );
        if batched.occupancy <= 1.0 {
            return Err(format!(
                "mean batch occupancy {:.2} did not exceed 1 — batching never engaged",
                batched.occupancy
            ));
        }
        return Ok(());
    }

    let outcome = run_cell(&net.graph, cfg.clone(), &spec, "cell")?;
    if smoke && outcome.multi_batches == 0 {
        emit_single(&outcome, &cfg, &spec, json)?;
        return Err(format!(
            "smoke check failed: no batch served >= 2 requests ({} batches, occupancy {:.2})",
            outcome.batches, outcome.occupancy
        ));
    }
    emit_single(&outcome, &cfg, &spec, json)?;
    if smoke {
        eprintln!(
            "smoke ok: {} multi-request batches, occupancy {:.2}",
            outcome.multi_batches, outcome.occupancy
        );
    }
    Ok(())
}

fn emit_single(
    outcome: &CellOutcome,
    cfg: &ServeConfig,
    spec: &LoadSpec,
    json: bool,
) -> Result<(), String> {
    let mut r = Report::new("loadgen");
    r.push_count("clients", spec.clients as u64)
        .push_count("k", cfg.max_k as u64)
        .push_time("batch_window", cfg.window)
        .push_count("workers", cfg.workers as u64);
    outcome.fill_report(&mut r, "");
    if json {
        println!("{}", serde_json::to_string(&r).map_err(|e| e.to_string())?);
    } else {
        phast_bench::report::report_to_table(&r).print();
    }
    Ok(())
}

/// Starts a loopback server with `cfg`, drives it with `spec`, gracefully
/// shuts it down, and returns client- plus server-side numbers.
fn run_cell(
    graph: &Graph,
    cfg: ServeConfig,
    spec: &LoadSpec,
    label: &str,
) -> Result<CellOutcome, String> {
    let poison = cfg.panic_on_source;
    let service = Service::for_graph(graph, cfg);
    let server = Server::spawn(Arc::clone(&service), "127.0.0.1:0")
        .map_err(|e| format!("cannot bind loopback: {e}"))?;
    let addr = server.local_addr().to_string();
    // Regular traffic stays below the poisoned vertex (if any), so only
    // the dedicated injector connection can trip the fault.
    let drive_n = graph.num_vertices() - usize::from(poison.is_some());
    let injector = poison.map(|bad| {
        let addr = addr.clone();
        std::thread::Builder::new()
            .name("loadgen-injector".into())
            .spawn(move || inject_poison(&addr, bad))
            .expect("cannot spawn injector thread")
    });
    let mut outcome = drive(&addr, drive_n, spec, label)?;
    if let Some(h) = injector {
        h.join().map_err(|_| "injector thread panicked".to_string())??;
        // The panic must have cost one batch, not the service: a fresh
        // connection after the fault still gets exact answers.
        let mut probe = Client::connect(&addr)
            .map_err(|e| format!("post-panic connect failed: {e}"))?;
        probe
            .tree(0, None)
            .map_err(|e| format!("service stopped answering after the panic: {e}"))?;
    }
    server.shutdown();
    let stats = service.stats();
    outcome.served = stats.served();
    outcome.batches = stats.batches();
    outcome.multi_batches = stats.multi_batches();
    outcome.occupancy = stats.mean_batch_occupancy();
    outcome.worker_restarts = stats.worker_restarts();
    outcome.quarantined = stats.quarantined_requests();
    if poison.is_some() {
        if outcome.worker_restarts == 0 {
            return Err("injected panic did not register: worker_restarts == 0".into());
        }
        eprintln!(
            "[{label}] soak ok: {} worker restart(s), {} quarantined request(s), \
             service answered afterwards",
            outcome.worker_restarts, outcome.quarantined
        );
    }
    Ok(outcome)
}

/// Sends the poisoned request and insists on the typed quarantine reply.
fn inject_poison(addr: &str, bad: u32) -> Result<(), String> {
    // Let the regular clients get going first so the panic lands mid-run.
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(addr).map_err(|e| format!("injector connect: {e}"))?;
    match client.tree(bad, None) {
        Ok(_) => Err("poisoned request returned an answer instead of a typed error".into()),
        Err(e) if e.kind == ErrorKind::Internal => Ok(()),
        Err(e) => Err(format!(
            "poisoned request got error kind {:?} instead of internal: {}",
            e.kind, e.message
        )),
    }
}

/// Runs the closed-loop clients against `addr` and merges their latencies.
fn drive(
    addr: &str,
    num_vertices: usize,
    spec: &LoadSpec,
    label: &str,
) -> Result<CellOutcome, String> {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..spec.clients {
        let addr = addr.to_string();
        let stop = Arc::clone(&stop);
        let mode = spec.mode;
        let requests = if spec.duration.is_some() {
            u64::MAX
        } else {
            spec.requests
        };
        let seed = spec.seed.wrapping_add(c as u64).wrapping_mul(0x9e37_79b9);
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-client-{c}"))
                .spawn(move || client_loop(&addr, num_vertices, mode, seed, requests, &stop))
                .map_err(|e| format!("cannot spawn client thread: {e}"))?,
        );
    }
    if let Some(d) = spec.duration {
        std::thread::sleep(d);
        stop.store(true, Ordering::SeqCst);
    }
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (lat, errs) = h.join().map_err(|_| "client thread panicked".to_string())?;
        latencies.extend(lat);
        errors += errs;
    }
    let elapsed = start.elapsed();
    eprintln!(
        "[{label}] {} ok / {errors} errors in {elapsed:.2?}",
        latencies.len()
    );
    latencies.sort_unstable();
    Ok(CellOutcome {
        ok: latencies.len() as u64,
        errors,
        elapsed,
        latencies,
        served: 0,
        batches: 0,
        multi_batches: 0,
        occupancy: 0.0,
        worker_restarts: 0,
        quarantined: 0,
    })
}

/// One closed-loop client: exactly one request in flight at a time.
fn client_loop(
    addr: &str,
    num_vertices: usize,
    mode: Mode,
    seed: u64,
    requests: u64,
    stop: &AtomicBool,
) -> (Vec<u64>, u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let Ok(mut client) = Client::connect(addr) else {
        return (Vec::new(), 1);
    };
    let n = num_vertices as u32;
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for _ in 0..requests {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let source = rng.random_range(0..n);
        let op = match mode {
            Mode::Tree => 0,
            Mode::Many => 1,
            Mode::P2p => 2,
            Mode::Mixed => {
                if rng.random_bool(0.4) {
                    0
                } else if rng.random_bool(0.66) {
                    1
                } else {
                    2
                }
            }
        };
        let t = Instant::now();
        let result = match op {
            0 => client.tree(source, None).map(|_| ()),
            1 => {
                let targets: Vec<u32> =
                    (0..1 + rng.random_range(0..8)).map(|_| rng.random_range(0..n)).collect();
                client.many(source, &targets, None).map(|_| ())
            }
            _ => client.p2p(source, rng.random_range(0..n), None).map(|_| ()),
        };
        match result {
            Ok(()) => latencies.push(t.elapsed().as_nanos() as u64),
            Err(e) => {
                errors += 1;
                // A transport failure (server gone) ends this client.
                if e.message.starts_with("transport") {
                    break;
                }
            }
        }
    }
    (latencies, errors)
}
