//! The experiment harness: everything the `experiments` binary and the
//! Criterion benches share.
//!
//! Each table/figure of the paper has a generator in the `experiments`
//! binary (see `DESIGN.md` for the experiment index); this library hosts
//! the workload builders, the host-inspection code (Table IV), the
//! memory-bandwidth lower-bound test (Section VIII-B), the energy model
//! (Table VI), the report formatting, and the perf-regression suite
//! behind `phast_cli bench` (see [`regress`]).

pub mod cli;
pub mod energy;
pub mod hostinfo;
pub mod lower_bound;
pub mod regress;
pub mod report;
pub mod timing;
pub mod workload;

pub use report::Table;
pub use timing::{time_once, time_per, SampleStats, Samples, Timed};
pub use workload::{Instance, InstanceConfig};
