//! The perf-regression subsystem: a deterministic benchmark suite over
//! the hot paths, a versioned `BENCH_*.json` artifact, and a noise-aware
//! baseline comparison that CI can gate on.
//!
//! The paper's contribution *is* measured speed, so this repo treats its
//! performance trajectory as data: every suite run produces a
//! [`BenchArtifact`] (schema [`SCHEMA_VERSION`]) holding, per benchmark,
//! the per-iteration samples and their [`SampleStats`] summary
//! (median/MAD/p95 — medians because wall-clock noise is one-sided,
//! MAD because it is robust to the stragglers that inflate a variance).
//!
//! ## Covered engines
//!
//! One benchmark per hot path, at a shared instance scale:
//!
//! | name | path |
//! |------|------|
//! | `dijkstra_scalar` | scalar Dijkstra baseline (`phast-dijkstra`) |
//! | `phast_single_tree` | single-tree level-ordered sweep |
//! | `phast_k{k}_scalar` / `_sse41` / `_avx2` | k-tree batched sweep per kernel (SIMD rows only where the CPU has the feature) |
//! | `phast_par_k{k}` | `run_par` intra-level parallel batched sweep |
//! | `gphast_k{k}` | GPHAST simulator batch (GTX 580 profile) |
//! | `serve_batch_k{k}` | the serve scheduler's batch-execution path ([`phast_serve::BatchRunner`]) |
//! | `rphast_select_r100` | RPHAST selection build at `\|T\| = scale/100` |
//! | `rphast_sweep_r{10,100,1000}` | RPHAST restricted single-tree sweep at `\|T\| = scale/ratio` (r100/r1000 are the paper's "beats the full sweep" regime) |
//! | `customize_10e6` | `phast-metrics` customization: perturbed metric → servable `(Phast, Hierarchy)` on the frozen topology |
//! | `recontract_10e6` | the path customization replaces: full witness-search recontraction + instance build |
//! | `contract_10e5` | sequential lazy-heap CH contraction (reference ordering) |
//! | `contract_par_10e5` | round-based parallel CH contraction at 4 threads |
//! | `store_load_heap` | PHASTBIN artifact load, heap decode (`read_instance`) |
//! | `store_load_mmap` | the same artifact through the zero-copy mmap path (`load_instance_mmap`) |
//!
//! ## Comparison policy
//!
//! A benchmark regresses when its current median exceeds
//! `base_median + max(threshold% · base_median, k · base_MAD)` — the
//! percentage term catches real slowdowns on quiet benchmarks, the MAD
//! term keeps noisy benchmarks from tripping the gate on jitter. A
//! benchmark present in the baseline but missing from the current run is
//! a failure too (a silently dropped benchmark must not read as green),
//! as is comparing artifacts of different instance scales.
//!
//! `PHAST_BENCH_SLOWDOWN=name:factor` (test knob, exact benchmark name or
//! `*`) multiplies that benchmark's recorded samples — CI uses it to
//! prove the gate actually fails on an injected regression.

use crate::hostinfo::HostInfo;
use crate::report::Table;
use crate::timing::{SampleStats, Samples};
use crate::workload::{scale_from_env, InstanceConfig};
use phast_core::simd::{best_simd_for, SimdLevel, MAX_K};
use phast_core::{HeteroQuery, PhastBuilder, RestrictedEngine, SelectionBuilder};
use phast_dijkstra::dijkstra::Dijkstra;
use phast_gpu::{DeviceProfile, Gphast};
use phast_graph::Vertex;
use phast_serve::{ServeConfig, Service};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Version of the `BENCH_*.json` schema this module reads and writes.
/// Bump on any incompatible change; [`load_artifact`] refuses mismatches.
pub const SCHEMA_VERSION: u32 = 1;

/// Suite identifier stored in every artifact.
pub const SUITE_NAME: &str = "phast-bench/regress";

/// One benchmark's result: summary statistics plus the raw per-iteration
/// samples (so a future reader can re-derive any statistic).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BenchResult {
    /// Stable benchmark name (the comparison key).
    pub name: String,
    /// Untimed warmup iterations run before sampling.
    pub warmup: usize,
    /// Median/MAD/p95/min/max/mean over the samples.
    pub stats: SampleStats,
    /// Raw per-iteration durations, ns, in run order.
    pub samples_ns: Vec<u64>,
}

/// A full suite run: the versioned, machine-readable perf artifact.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BenchArtifact {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Suite identifier ([`SUITE_NAME`]).
    pub suite: String,
    /// Unix timestamp (seconds) of the run.
    pub created_unix_s: u64,
    /// Host fingerprint — baselines from another machine are detectable.
    pub host: HostInfo,
    /// Instance size the suite ran at (`PHAST_SCALE`-controlled).
    pub scale: usize,
    /// Batch width of the k-tree benchmarks.
    pub k: usize,
    /// Whether the producing build compiled hot-path obs counters.
    pub counters_enabled: bool,
    /// One entry per benchmark, in suite order.
    pub benchmarks: Vec<BenchResult>,
    /// Merged observability report of the suite run (per-benchmark
    /// engine counters under `benchname.*`), in `phast-obs` JSON form.
    pub obs: serde::Value,
}

impl BenchArtifact {
    /// Looks a benchmark up by name.
    pub fn get(&self, name: &str) -> Option<&BenchResult> {
        self.benchmarks.iter().find(|b| b.name == name)
    }

    /// Renders the per-benchmark summary as a [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("bench suite ({} vertices, k={})", self.scale, self.k),
            &["benchmark", "runs", "median", "mad", "p95"],
        );
        for b in &self.benchmarks {
            t.row(&[
                b.name.clone(),
                b.stats.runs.to_string(),
                crate::report::fmt_duration(Duration::from_nanos(b.stats.median_ns)),
                crate::report::fmt_duration(Duration::from_nanos(b.stats.mad_ns)),
                crate::report::fmt_duration(Duration::from_nanos(b.stats.p95_ns)),
            ]);
        }
        t
    }
}

/// Writes an artifact as JSON, naming the path in the error.
pub fn write_artifact(path: &Path, artifact: &BenchArtifact) -> Result<(), String> {
    let json = serde_json::to_string(artifact)
        .map_err(|e| format!("cannot serialize bench artifact: {e}"))?;
    std::fs::write(path, json)
        .map_err(|e| format!("cannot write `{}`: {e}", path.display()))
}

/// Loads and structurally validates an artifact: schema version, suite
/// name, and per-benchmark sample consistency all checked up front, so a
/// stale or foreign file is a clean error instead of a nonsense compare.
pub fn load_artifact(path: &Path) -> Result<BenchArtifact, String> {
    let bytes = std::fs::read(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    let a: BenchArtifact = serde_json::from_slice(&bytes)
        .map_err(|e| format!("cannot parse bench artifact `{}`: {e}", path.display()))?;
    if a.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "bench artifact `{}` has schema version {} (this binary reads {SCHEMA_VERSION}); \
             regenerate the baseline",
            path.display(),
            a.schema_version
        ));
    }
    if a.suite != SUITE_NAME {
        return Err(format!(
            "`{}` is a `{}` artifact, not `{SUITE_NAME}`",
            path.display(),
            a.suite
        ));
    }
    for b in &a.benchmarks {
        if b.samples_ns.is_empty() || b.stats.runs != b.samples_ns.len() {
            return Err(format!(
                "bench artifact `{}`: benchmark `{}` has inconsistent samples",
                path.display(),
                b.name
            ));
        }
    }
    Ok(a)
}

/// Suite parameters.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Instance vertex count (defaults to `PHAST_SCALE` or 50 000).
    pub scale: usize,
    /// Untimed warmup iterations per benchmark.
    pub warmup: usize,
    /// Timed samples per benchmark (the acceptance floor is 5).
    pub runs: usize,
    /// Batch width of the k-tree benchmarks (multiple of 4, `<= MAX_K`).
    pub k: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            scale: scale_from_env(50_000),
            warmup: 2,
            runs: 7,
            k: 16,
        }
    }
}

impl SuiteConfig {
    fn validate(&self) -> Result<(), String> {
        if self.runs < 5 {
            return Err(format!(
                "need at least 5 samples for a meaningful median/MAD (got {})",
                self.runs
            ));
        }
        if self.k == 0 || self.k > MAX_K || !self.k.is_multiple_of(4) {
            return Err(format!(
                "k must be a positive multiple of 4 up to {MAX_K} (got {})",
                self.k
            ));
        }
        if self.scale < 100 {
            return Err(format!("scale {} is too small to benchmark", self.scale));
        }
        Ok(())
    }
}

/// The injected-slowdown test knob, parsed from `PHAST_BENCH_SLOWDOWN`.
struct Slowdown {
    name: String,
    factor: u32,
}

impl Slowdown {
    /// Reads the knob; malformed values fail fast — it only exists so CI
    /// can prove the gate fires, and a typo silently measuring nothing
    /// would defeat exactly that.
    fn from_env() -> Result<Option<Slowdown>, String> {
        let Some(raw) = std::env::var("PHAST_BENCH_SLOWDOWN").ok().filter(|s| !s.is_empty())
        else {
            return Ok(None);
        };
        let (name, factor) = raw
            .split_once(':')
            .ok_or_else(|| format!("malformed PHAST_BENCH_SLOWDOWN `{raw}` (want name:factor)"))?;
        let factor: u32 = factor
            .parse()
            .map_err(|e| format!("malformed PHAST_BENCH_SLOWDOWN factor `{factor}`: {e}"))?;
        if factor == 0 {
            return Err("PHAST_BENCH_SLOWDOWN factor must be positive".into());
        }
        Ok(Some(Slowdown {
            name: name.to_string(),
            factor,
        }))
    }

    fn applies_to(&self, bench: &str) -> bool {
        self.name == "*" || self.name == bench
    }
}

/// Runs the full suite and assembles the artifact. Deterministic in the
/// workload (fixed generator seeds, fixed source rotation); the only
/// nondeterminism left is the wall clock itself.
pub fn run_suite(cfg: &SuiteConfig) -> Result<BenchArtifact, String> {
    cfg.validate()?;
    let slowdown = Slowdown::from_env()?;
    let k = cfg.k;
    let iterations = cfg.warmup + cfg.runs;

    // Shared workload: one Europe-like instance, preprocessed once.
    let instance = InstanceConfig::default_europe()
        .with_vertices(cfg.scale)
        .build();
    let graph = &instance.network.graph;
    let hierarchy = phast_ch::contract_graph(graph, &phast_ch::ContractionConfig::default());
    let phast = Arc::new(PhastBuilder::new().build_with_hierarchy(graph, &hierarchy));
    // Enough distinct sources that consecutive iterations never reuse a
    // tree, deterministic in the fixed seed.
    let pool = instance.sources((iterations * k).max(64), 0xBE7C);
    let src = |i: usize| pool[i % pool.len()];
    let batch_at = |i: usize| -> Vec<Vertex> { (0..k).map(|j| src(i * k + j)).collect() };

    let mut suite_report = phast_obs::Report::new(SUITE_NAME);
    let mut benchmarks: Vec<BenchResult> = Vec::new();
    let mut record = |name: &str, mut samples: Samples, report: Option<&phast_obs::Report>| {
        if let Some(s) = slowdown.as_ref().filter(|s| s.applies_to(name)) {
            for d in &mut samples.samples {
                *d = d.saturating_mul(s.factor);
            }
        }
        if let Some(r) = report {
            suite_report.merge_prefixed(name, r);
        }
        benchmarks.push(BenchResult {
            name: name.to_string(),
            warmup: samples.warmup,
            stats: samples.stats(),
            samples_ns: samples.to_ns(),
        });
    };

    // 1. Scalar Dijkstra baseline.
    {
        let mut d: Dijkstra = Dijkstra::new(graph.forward());
        let s = Samples::collect(cfg.warmup, cfg.runs, |i| {
            d.run_in_place(src(i));
        });
        record("dijkstra_scalar", s, None);
    }

    // 2. Single-tree level-ordered sweep.
    {
        let mut e = phast.engine();
        let s = Samples::collect(cfg.warmup, cfg.runs, |i| {
            e.distances_sweep(src(i));
        });
        record("phast_single_tree", s, Some(&e.stats().report("single")));
    }

    // 3. k-tree batched sweep, one benchmark per kernel the CPU has.
    let kernels: &[SimdLevel] = match best_simd_for(k) {
        SimdLevel::Scalar => &[SimdLevel::Scalar],
        SimdLevel::Sse41 => &[SimdLevel::Scalar, SimdLevel::Sse41],
        SimdLevel::Avx2 => &[SimdLevel::Scalar, SimdLevel::Sse41, SimdLevel::Avx2],
    };
    for &level in kernels {
        let suffix = match level {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse41 => "sse41",
            SimdLevel::Avx2 => "avx2",
        };
        let mut e = phast.multi_engine(k);
        e.force_simd(level);
        let s = Samples::collect(cfg.warmup, cfg.runs, |i| {
            e.run(&batch_at(i));
        });
        record(
            &format!("phast_k{k}_{suffix}"),
            s,
            Some(&e.stats().report(suffix)),
        );
    }

    // 4. Intra-level parallel batched sweep (`run_par`, rayon pool).
    {
        let mut e = phast.multi_engine(k);
        let s = Samples::collect(cfg.warmup, cfg.runs, |i| {
            e.run_par(&batch_at(i));
        });
        record(&format!("phast_par_k{k}"), s, Some(&e.stats().report("par")));
    }

    // 5. GPHAST simulator batch (GTX 580 profile).
    {
        let mut g = Gphast::new(&phast, DeviceProfile::gtx_580(), k)
            .map_err(|e| format!("GPHAST device setup failed: {e:?}"))?;
        let mut last_stats = None;
        let s = Samples::collect(cfg.warmup, cfg.runs, |i| {
            last_stats = Some(g.run(&batch_at(i)));
        });
        let r = last_stats.map(|st| st.report("gphast"));
        record(&format!("gphast_k{k}"), s, r.as_ref());
    }

    // 6. Serve scheduler batch-execution path.
    {
        let serve_cfg = ServeConfig {
            max_k: k,
            window: Duration::ZERO,
            workers: 1,
            ..ServeConfig::default()
        };
        let service = Service::new(Arc::clone(&phast), None, serve_cfg);
        let epoch = service.current_epoch();
        let mut runner = service.batch_runner(&epoch);
        let s = Samples::collect(cfg.warmup, cfg.runs, |i| {
            let queries: Vec<HeteroQuery> = batch_at(i)
                .into_iter()
                .map(|source| HeteroQuery::Tree { source })
                .collect();
            runner.run(&queries);
        });
        drop(runner);
        let r = service.stats().report("serve");
        record(&format!("serve_batch_k{k}"), s, Some(&r));
        service.shutdown();
    }

    // 7. RPHAST restricted sweeps: one selection-build benchmark, then a
    //    restricted single-tree sweep per |T|/n ratio. Targets are an
    //    even deterministic stride over the vertex range; the restricted
    //    rows at ratio >= 100 are the regime where RPHAST must beat
    //    `phast_single_tree` (the acceptance gate in the bench e2e test).
    {
        let n = graph.num_vertices();
        let targets_at = |ratio: usize| -> Vec<Vertex> {
            let count = (n / ratio).max(1);
            (0..count).map(|j| (j * (n / count)) as Vertex).collect()
        };
        let mut builder = SelectionBuilder::new(&phast);
        {
            let t = targets_at(100);
            let s = Samples::collect(cfg.warmup, cfg.runs, |_| {
                builder.build(&t);
            });
            record("rphast_select_r100", s, None);
        }
        for ratio in [10usize, 100, 1000] {
            let t = targets_at(ratio);
            let sel = builder.build(&t);
            let mut e = RestrictedEngine::new(&phast);
            let s = Samples::collect(cfg.warmup, cfg.runs, |i| {
                e.distances(&sel, src(i));
            });
            let name = format!("rphast_sweep_r{ratio}");
            let r = e.stats().report(format!("rphast_r{ratio}"));
            record(&name, s, Some(&r));
        }
    }

    // 8. Metric customization vs full recontraction (`phast-metrics`).
    //    The topology is frozen once (amortized, like production); each
    //    iteration then turns a distinct perturbed metric into a servable
    //    (Phast, Hierarchy) pair. The companion `recontract_10e6` entry
    //    measures the path customization replaces — witness-search
    //    contraction plus instance build on the same graph. The `10e6`
    //    suffix names the production target scale (PHAST_SCALE=10^6);
    //    like every other entry the suite runs it at `cfg.scale`, and the
    //    customize/recontract *ratio* is what the e2e gate asserts.
    {
        let customizer = phast_metrics::MetricCustomizer::new(graph.clone(), &hierarchy)
            .map_err(|e| format!("metric topology freeze failed: {e}"))?;
        let s = Samples::collect(cfg.warmup, cfg.runs, |i| {
            let m = phast_metrics::MetricWeights::perturbed(
                graph,
                "bench",
                i as u64,
                0xC0FFEE ^ i as u64,
            );
            customizer
                .build(&m)
                .expect("customizing a valid perturbed metric cannot fail");
        });
        record("customize_10e6", s, None);
        let s = Samples::collect(cfg.warmup, cfg.runs, |_| {
            let h = phast_ch::contract_graph(graph, &phast_ch::ContractionConfig::default());
            PhastBuilder::new().build_with_hierarchy(graph, &h);
        });
        record("recontract_10e6", s, None);
    }

    // 9. CH contraction: the sequential lazy-heap reference vs the
    //    round-based parallel contractor pinned at 4 threads. Like the
    //    `10e6` entries, the `10e5` suffix names the production target
    //    scale; the suite runs both at `cfg.scale` on the shared graph.
    //    Tracking both medians makes the parallel speedup (or any witness
    //    -search regression) part of the BENCH trajectory.
    {
        let s = Samples::collect(cfg.warmup, cfg.runs, |_| {
            phast_ch::contract_graph(graph, &phast_ch::ContractionConfig::sequential());
        });
        record("contract_10e5", s, None);
        let par_cfg = phast_ch::ContractionConfig {
            threads: 4,
            ..phast_ch::ContractionConfig::default()
        };
        let s = Samples::collect(cfg.warmup, cfg.runs, |_| {
            phast_ch::contract_graph(graph, &par_cfg);
        });
        record("contract_par_10e5", s, None);
    }

    // 10. Artifact load: heap decode (`read_instance`) vs the zero-copy
    //    mmap path (`load_instance_mmap`). Same PHASTBIN v3 file, written
    //    once; the mmap row validates CRCs then borrows the big section
    //    slices out of the mapping instead of copying them, which is the
    //    point of the format — replica startup cost is dominated by this.
    {
        let dir = std::env::temp_dir().join(format!("phast-regress-{}", std::process::id()));
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
        let file = dir.join("instance.phast");
        phast_store::write_instance(&file, &phast, Some(&hierarchy))
            .map_err(|e| format!("cannot write bench artifact instance: {e}"))?;
        let s = Samples::collect(cfg.warmup, cfg.runs, |_| {
            phast_store::read_instance(&file).expect("heap load of a file we just wrote");
        });
        record("store_load_heap", s, None);
        let s = Samples::collect(cfg.warmup, cfg.runs, |_| {
            let loaded =
                phast_store::load_instance_mmap(&file).expect("mmap load of a file we just wrote");
            assert!(loaded.zero_copy, "a fresh v3 artifact must take the zero-copy path");
        });
        record("store_load_mmap", s, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    Ok(BenchArtifact {
        schema_version: SCHEMA_VERSION,
        suite: SUITE_NAME.to_string(),
        created_unix_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        host: HostInfo::detect(),
        scale: cfg.scale,
        k,
        counters_enabled: phast_obs::COUNTERS_ENABLED,
        benchmarks,
        obs: serde_json::to_value(&suite_report)
            .map_err(|e| format!("cannot serialize obs report: {e}"))?,
    })
}

/// Noise-aware regression thresholds.
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Minimum relative slowdown that counts as a regression, percent.
    pub threshold_pct: f64,
    /// MAD multiplier: on noisy benchmarks the allowance grows to
    /// `mad_k · baseline MAD` so jitter does not trip the gate.
    pub mad_k: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            threshold_pct: 10.0,
            mad_k: 4.0,
        }
    }
}

/// One benchmark's baseline-vs-current verdict.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Benchmark name.
    pub name: String,
    /// Baseline median, ns.
    pub base_median_ns: u64,
    /// Current median, ns.
    pub cur_median_ns: u64,
    /// Largest non-regressing current median, ns.
    pub allowed_ns: u64,
    /// `current / baseline` medians (`> 1` is slower).
    pub ratio: f64,
    /// Whether the current median exceeds the allowance.
    pub regressed: bool,
}

/// Outcome of comparing two artifacts.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Per-benchmark verdicts, in baseline order.
    pub deltas: Vec<Delta>,
    /// Baseline benchmarks absent from the current run — a failure: a
    /// silently dropped benchmark must not read as green.
    pub missing_in_current: Vec<String>,
    /// Current benchmarks absent from the baseline (informational).
    pub new_in_current: Vec<String>,
    /// The two artifacts ran at different instance scales — a failure:
    /// the numbers are not comparable.
    pub scale_mismatch: Option<(usize, usize)>,
    /// The host fingerprints differ (warning only: thresholds were
    /// calibrated against same-machine noise).
    pub host_mismatch: bool,
}

impl Comparison {
    /// Every reason this comparison fails the gate (empty = pass).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some((base, cur)) = self.scale_mismatch {
            out.push(format!(
                "instance scale mismatch: baseline ran at {base} vertices, current at {cur}"
            ));
        }
        for name in &self.missing_in_current {
            out.push(format!("benchmark `{name}` is in the baseline but was not run"));
        }
        for d in self.deltas.iter().filter(|d| d.regressed) {
            out.push(format!(
                "`{}` regressed: median {} -> {} ({:+.1}%, allowed up to {})",
                d.name,
                crate::report::fmt_duration(Duration::from_nanos(d.base_median_ns)),
                crate::report::fmt_duration(Duration::from_nanos(d.cur_median_ns)),
                (d.ratio - 1.0) * 100.0,
                crate::report::fmt_duration(Duration::from_nanos(d.allowed_ns)),
            ));
        }
        out
    }

    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Renders the per-benchmark deltas as a [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "baseline comparison",
            &["benchmark", "baseline", "current", "delta", "allowed", "verdict"],
        );
        for d in &self.deltas {
            t.row(&[
                d.name.clone(),
                crate::report::fmt_duration(Duration::from_nanos(d.base_median_ns)),
                crate::report::fmt_duration(Duration::from_nanos(d.cur_median_ns)),
                format!("{:+.1}%", (d.ratio - 1.0) * 100.0),
                crate::report::fmt_duration(Duration::from_nanos(d.allowed_ns)),
                if d.regressed { "REGRESSED" } else { "ok" }.to_string(),
            ]);
        }
        for name in &self.missing_in_current {
            t.row(&[
                name.clone(),
                "-".into(),
                "MISSING".into(),
                "-".into(),
                "-".into(),
                "REGRESSED".into(),
            ]);
        }
        for name in &self.new_in_current {
            t.row(&[name.clone(), "NEW".into(), "-".into(), "-".into(), "-".into(), "ok".into()]);
        }
        t
    }
}

/// Compares `current` against `baseline` under `cfg`'s thresholds.
pub fn compare(baseline: &BenchArtifact, current: &BenchArtifact, cfg: &CompareConfig) -> Comparison {
    let mut c = Comparison {
        host_mismatch: baseline.host != current.host,
        scale_mismatch: (baseline.scale != current.scale)
            .then_some((baseline.scale, current.scale)),
        ..Comparison::default()
    };
    for base in &baseline.benchmarks {
        let Some(cur) = current.get(&base.name) else {
            c.missing_in_current.push(base.name.clone());
            continue;
        };
        let base_median = base.stats.median_ns;
        let cur_median = cur.stats.median_ns;
        let margin_pct = base_median as f64 * cfg.threshold_pct / 100.0;
        let margin_mad = base.stats.mad_ns as f64 * cfg.mad_k;
        let allowed = base_median.saturating_add(margin_pct.max(margin_mad) as u64);
        c.deltas.push(Delta {
            name: base.name.clone(),
            base_median_ns: base_median,
            cur_median_ns: cur_median,
            allowed_ns: allowed,
            ratio: if base_median == 0 {
                1.0
            } else {
                cur_median as f64 / base_median as f64
            },
            regressed: cur_median > allowed,
        });
    }
    for cur in &current.benchmarks {
        if baseline.get(&cur.name).is_none() {
            c.new_in_current.push(cur.name.clone());
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, samples_ns: Vec<u64>) -> BenchResult {
        let samples = Samples {
            warmup: 1,
            samples: samples_ns
                .iter()
                .map(|&n| Duration::from_nanos(n))
                .collect(),
        };
        BenchResult {
            name: name.to_string(),
            warmup: 1,
            stats: samples.stats(),
            samples_ns,
        }
    }

    fn artifact(benchmarks: Vec<BenchResult>) -> BenchArtifact {
        BenchArtifact {
            schema_version: SCHEMA_VERSION,
            suite: SUITE_NAME.to_string(),
            created_unix_s: 0,
            host: HostInfo::detect(),
            scale: 1000,
            k: 16,
            counters_enabled: phast_obs::COUNTERS_ENABLED,
            benchmarks,
            obs: serde::Value::Null,
        }
    }

    #[test]
    fn self_compare_passes() {
        let a = artifact(vec![result("x", vec![100, 110, 90, 105, 95])]);
        let c = compare(&a, &a, &CompareConfig::default());
        assert!(c.passed(), "{:?}", c.failures());
        assert_eq!(c.deltas.len(), 1);
        assert!(!c.deltas[0].regressed);
    }

    #[test]
    fn clear_regression_fails_and_names_the_benchmark() {
        let base = artifact(vec![result("x", vec![100, 110, 90, 105, 95])]);
        let cur = artifact(vec![result("x", vec![300, 310, 290, 305, 295])]);
        let c = compare(&base, &cur, &CompareConfig::default());
        assert!(!c.passed());
        let msg = c.failures().join("\n");
        assert!(msg.contains('x') && msg.contains("regressed"), "{msg}");
        // And the delta table renders a REGRESSED verdict.
        assert!(c.table().render().contains("REGRESSED"));
    }

    #[test]
    fn mad_margin_absorbs_noise_on_jittery_benchmarks() {
        // Baseline: median 100, MAD 20 (deviations 30, 20, 0, 20, 30).
        let base = artifact(vec![result("x", vec![70, 80, 100, 120, 130])]);
        // Current median 160: +60% > the 10% threshold, but within the
        // 4·MAD = 80 noise margin.
        let cur = artifact(vec![result("x", vec![160, 160, 160, 160, 160])]);
        let cfg = CompareConfig::default();
        assert!(compare(&base, &cur, &cfg).passed());
        // Past the MAD margin it fails.
        let cur = artifact(vec![result("x", vec![190, 190, 190, 190, 190])]);
        assert!(!compare(&base, &cur, &cfg).passed());
    }

    #[test]
    fn missing_benchmark_and_scale_mismatch_fail() {
        let base = artifact(vec![
            result("x", vec![100, 100, 100, 100, 100]),
            result("y", vec![100, 100, 100, 100, 100]),
        ]);
        let cur = artifact(vec![result("x", vec![100, 100, 100, 100, 100])]);
        let c = compare(&base, &cur, &CompareConfig::default());
        assert!(!c.passed());
        assert!(c.failures().join("\n").contains("`y`"));

        let mut small = base.clone();
        small.scale = 999;
        let c = compare(&small, &base, &CompareConfig::default());
        assert!(!c.passed());
        assert!(c.failures().join("\n").contains("scale mismatch"));
    }

    #[test]
    fn new_benchmark_is_informational_not_fatal() {
        let base = artifact(vec![result("x", vec![100, 100, 100, 100, 100])]);
        let cur = artifact(vec![
            result("x", vec![100, 100, 100, 100, 100]),
            result("z", vec![1, 1, 1, 1, 1]),
        ]);
        let c = compare(&base, &cur, &CompareConfig::default());
        assert!(c.passed());
        assert_eq!(c.new_in_current, vec!["z".to_string()]);
    }

    #[test]
    fn artifact_roundtrips_and_load_validates() {
        let dir = std::env::temp_dir().join(format!("phast-bench-art-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let a = artifact(vec![result("x", vec![100, 110, 90, 105, 95])]);
        write_artifact(&path, &a).unwrap();
        let b = load_artifact(&path).unwrap();
        assert_eq!(b.schema_version, SCHEMA_VERSION);
        assert_eq!(b.scale, a.scale);
        assert_eq!(b.get("x").unwrap().stats, a.benchmarks[0].stats);
        assert_eq!(b.get("x").unwrap().samples_ns, a.benchmarks[0].samples_ns);

        // A bumped schema version is refused with a regenerate hint.
        let mut skewed = a.clone();
        skewed.schema_version = SCHEMA_VERSION + 1;
        write_artifact(&path, &skewed).unwrap();
        let err = load_artifact(&path).unwrap_err();
        assert!(err.contains("schema version"), "{err}");

        // Garbage is a clean error, not a panic.
        std::fs::write(&path, b"not json").unwrap();
        assert!(load_artifact(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn suite_config_validation_catches_bad_knobs() {
        let ok = SuiteConfig {
            scale: 1000,
            ..SuiteConfig::default()
        };
        assert!(ok.validate().is_ok());
        for bad in [
            SuiteConfig { runs: 4, ..ok.clone() },
            SuiteConfig { k: 0, ..ok.clone() },
            SuiteConfig { k: 6, ..ok.clone() },
            SuiteConfig { k: MAX_K + 4, ..ok.clone() },
            SuiteConfig { scale: 10, ..ok.clone() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    /// End-to-end: a tiny suite run produces a well-formed artifact whose
    /// self-comparison passes. (The CI smoke does this again through the
    /// CLI at a larger size.)
    #[test]
    fn tiny_suite_runs_and_self_compares() {
        let cfg = SuiteConfig {
            scale: 600,
            warmup: 1,
            runs: 5,
            k: 4,
        };
        let a = run_suite(&cfg).expect("suite runs");
        assert_eq!(a.schema_version, SCHEMA_VERSION);
        assert_eq!(a.k, 4);
        // The six engine families are all covered.
        for name in [
            "dijkstra_scalar",
            "phast_single_tree",
            "phast_k4_scalar",
            "phast_par_k4",
            "gphast_k4",
            "serve_batch_k4",
            "rphast_select_r100",
            "rphast_sweep_r10",
            "rphast_sweep_r100",
            "rphast_sweep_r1000",
            "customize_10e6",
            "recontract_10e6",
            "contract_10e5",
            "contract_par_10e5",
            "store_load_heap",
            "store_load_mmap",
        ] {
            let b = a.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(b.stats.runs, 5, "{name}");
            assert_eq!(b.samples_ns.len(), 5, "{name}");
            assert!(b.stats.min_ns <= b.stats.median_ns, "{name}");
            assert!(b.stats.median_ns <= b.stats.max_ns, "{name}");
        }
        // The point of metric customization: producing a servable
        // instance for a new metric must be at least 10x faster than
        // recontracting from scratch (the margin grows with scale; this
        // asserts it already holds at test size).
        let customize = a.get("customize_10e6").unwrap().stats.median_ns;
        let recontract = a.get("recontract_10e6").unwrap().stats.median_ns;
        assert!(
            recontract >= customize.saturating_mul(10),
            "customization must be >=10x faster than recontraction \
             (customize {customize}ns vs recontract {recontract}ns)"
        );
        // The parallel contractor must stay in the same league as the
        // sequential one even at this tiny scale, where per-round thread
        // fan-out overhead is at its relative worst and no speedup can be
        // expected (the "beats sequential at >= 4 threads" claim needs
        // meaningful per-round work; it is visible in the recorded
        // `contract_10e5` / `contract_par_10e5` medians at suite scale on
        // multi-core hosts). This sanity bound catches a parallel path
        // that has gone pathologically wrong without flaking on core count.
        let seq = a.get("contract_10e5").unwrap().stats.median_ns;
        let par = a.get("contract_par_10e5").unwrap().stats.median_ns;
        assert!(
            par <= seq.saturating_mul(4).max(50_000_000),
            "parallel contraction median {par}ns vs sequential {seq}ns"
        );
        let c = compare(&a, &a, &CompareConfig::default());
        assert!(c.passed(), "{:?}", c.failures());
        // The merged obs report is a real phast-obs JSON object.
        assert!(a.obs.get("metrics").is_some());
    }
}
