//! Smoke tests for the two binaries: the experiment harness and the CLI.
//! These run the real executables end-to-end on tiny inputs, so the
//! shipped entry points can never silently rot.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin)
        .args(args)
        .env("PHAST_SCALE", "2000") // keep the harness's instance tiny
        .output()
        .expect("binary should execute");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn experiments_quick_fig1_and_lb() {
    let bin = env!("CARGO_BIN_EXE_experiments");
    let (stdout, stderr, ok) = run(bin, &["--quick", "fig1", "lb", "tab5sim"]);
    assert!(ok, "experiments failed: {stderr}");
    assert!(stdout.contains("Figure 1"), "missing Figure 1: {stdout}");
    assert!(stdout.contains("Lower bound"), "missing lower bound");
    assert!(stdout.contains("M4-12"), "missing simulated machine rows");
}

#[test]
fn experiments_rejects_unknown_experiment_gracefully() {
    let bin = env!("CARGO_BIN_EXE_experiments");
    let (_, stderr, ok) = run(bin, &["--quick", "nonsense"]);
    assert!(ok, "unknown experiments are skipped, not fatal");
    assert!(stderr.contains("unknown experiment"));
}

#[test]
fn cli_full_pipeline() {
    let bin = env!("CARGO_BIN_EXE_phast_cli");
    let dir = std::env::temp_dir().join(format!("phast-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gr = dir.join("g.gr");
    let gr = gr.to_str().unwrap();
    let art = dir.join("g.phast.json");
    let art = art.to_str().unwrap();

    let (_, stderr, ok) = run(
        bin,
        &["generate", "--vertices", "2000", "--seed", "5", "-o", gr],
    );
    assert!(ok, "generate failed: {stderr}");

    let (stdout, _, ok) = run(bin, &["stats", gr]);
    assert!(ok);
    assert!(stdout.contains("strongly connected: true"), "{stdout}");

    let (_, stderr, ok) = run(bin, &["preprocess", gr, "-o", art]);
    assert!(ok, "preprocess failed: {stderr}");

    let (stdout, _, ok) = run(bin, &["tree", art, "--source", "0", "--top", "2"]);
    assert!(ok);
    assert!(stdout.contains("eccentricity"), "{stdout}");

    let (stdout, _, ok) = run(bin, &["query", gr, "--from", "0", "--to", "100"]);
    assert!(ok);
    assert!(stdout.contains("distance 0 -> 100:"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_reports_missing_arguments() {
    let bin = env!("CARGO_BIN_EXE_phast_cli");
    let out = Command::new(bin)
        .args(["tree"])
        .output()
        .expect("binary should execute");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}
