//! Smoke tests for the two binaries: the experiment harness and the CLI.
//! These run the real executables end-to-end on tiny inputs, so the
//! shipped entry points can never silently rot.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (String, String, bool) {
    run_env(bin, args, &[])
}

fn run_env(bin: &str, args: &[&str], env: &[(&str, &str)]) -> (String, String, bool) {
    let mut cmd = Command::new(bin);
    cmd.args(args).env("PHAST_SCALE", "2000"); // keep the harness's instance tiny
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary should execute");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn experiments_quick_fig1_and_lb() {
    let bin = env!("CARGO_BIN_EXE_experiments");
    let (stdout, stderr, ok) = run(bin, &["--quick", "fig1", "lb", "tab5sim"]);
    assert!(ok, "experiments failed: {stderr}");
    assert!(stdout.contains("Figure 1"), "missing Figure 1: {stdout}");
    assert!(stdout.contains("Lower bound"), "missing lower bound");
    assert!(stdout.contains("M4-12"), "missing simulated machine rows");
}

#[test]
fn experiments_rejects_unknown_experiment_gracefully() {
    let bin = env!("CARGO_BIN_EXE_experiments");
    let (_, stderr, ok) = run(bin, &["--quick", "nonsense"]);
    assert!(ok, "unknown experiments are skipped, not fatal");
    assert!(stderr.contains("unknown experiment"));
}

#[test]
fn cli_full_pipeline() {
    let bin = env!("CARGO_BIN_EXE_phast_cli");
    let dir = std::env::temp_dir().join(format!("phast-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gr = dir.join("g.gr");
    let gr = gr.to_str().unwrap();
    let art = dir.join("g.phast.json");
    let art = art.to_str().unwrap();

    let (_, stderr, ok) = run(
        bin,
        &["generate", "--vertices", "2000", "--seed", "5", "-o", gr],
    );
    assert!(ok, "generate failed: {stderr}");

    let (stdout, _, ok) = run(bin, &["stats", gr]);
    assert!(ok);
    assert!(stdout.contains("strongly connected: true"), "{stdout}");

    let (_, stderr, ok) = run(bin, &["preprocess", gr, "-o", art]);
    assert!(ok, "preprocess failed: {stderr}");

    let (stdout, _, ok) = run(bin, &["tree", art, "--source", "0", "--top", "2"]);
    assert!(ok);
    assert!(stdout.contains("eccentricity"), "{stdout}");

    let (stdout, _, ok) = run(bin, &["query", gr, "--from", "0", "--to", "100"]);
    assert!(ok);
    assert!(stdout.contains("distance 0 -> 100:"), "{stdout}");

    // The RPHAST many-to-many table: one row per source, tab-separated,
    // first column the source id, and the s==t diagonal cell is 0.
    let (stdout, stderr, ok) = run(
        bin,
        &["matrix", art, "--sources", "0,7,19", "--targets", "19,3", "--k", "4"],
    );
    assert!(ok, "matrix failed: {stderr}");
    assert!(stderr.contains("selection of"), "{stderr}");
    let rows: Vec<&str> = stdout.lines().collect();
    assert_eq!(rows.len(), 3, "{stdout}");
    assert!(rows[0].starts_with("0\t"), "{stdout}");
    let last = rows[2].split('\t').collect::<Vec<_>>();
    assert_eq!(last[0], "19");
    assert_eq!(last[1], "0", "19 -> 19 must be 0: {stdout}");

    // Out-of-range ids are clean errors naming the flag.
    let (_, stderr, ok) = run(
        bin,
        &["matrix", art, "--sources", "0", "--targets", "999999"],
    );
    assert!(!ok);
    assert!(stderr.contains("--targets") && stderr.contains("out of range"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The binary artifact pipeline: `preprocess --out x.phast` writes the
/// checksummed store (with the hierarchy bundled), `tree` loads it by
/// magic-byte sniffing, and `serve --instance` starts without
/// recontracting. A corrupted store must be a clean error, not a panic.
#[test]
fn cli_binary_store_pipeline() {
    let bin = env!("CARGO_BIN_EXE_phast_cli");
    let dir = std::env::temp_dir().join(format!("phast-cli-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gr = dir.join("g.gr");
    let gr = gr.to_str().unwrap();
    let art = dir.join("g.phast");
    let art_str = art.to_str().unwrap();

    let (_, stderr, ok) = run(
        bin,
        &["generate", "--vertices", "2000", "--seed", "7", "-o", gr],
    );
    assert!(ok, "generate failed: {stderr}");

    let (_, stderr, ok) = run(bin, &["preprocess", gr, "--out", art_str]);
    assert!(ok, "preprocess failed: {stderr}");
    let bytes = std::fs::read(&art).unwrap();
    assert_eq!(&bytes[..8], b"PHASTBIN", "binary store magic");

    let (stdout, stderr, ok) = run(bin, &["tree", art_str, "--source", "0", "--top", "2"]);
    assert!(ok, "tree on binary store failed: {stderr}");
    assert!(stdout.contains("eccentricity"), "{stdout}");

    let (_, stderr, ok) = run(
        bin,
        &[
            "serve", "--instance", art_str, "--addr", "127.0.0.1:0",
            "--duration-ms", "200",
        ],
    );
    assert!(ok, "serve --instance failed: {stderr}");
    assert!(
        stderr.contains("hierarchy bundled"),
        "serve should reuse the stored hierarchy: {stderr}"
    );
    assert!(stderr.contains("listening on"), "{stderr}");

    // Flip one payload byte: load must fail with a checksum error.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let bad = dir.join("bad.phast");
    std::fs::write(&bad, &corrupt).unwrap();
    let (_, stderr, ok) = run(bin, &["tree", bad.to_str().unwrap(), "--source", "0"]);
    assert!(!ok, "corrupt store must be rejected");
    assert!(!stderr.contains("panicked"), "panic on corrupt store: {stderr}");
    assert!(stderr.contains("error:"), "{stderr}");

    // A file written by a newer build (version field bumped, everything
    // else intact) must surface the typed version-skew message through
    // both artifact consumers — never a panic or a Debug dump.
    let mut newer = bytes.clone();
    let future = u32::from_le_bytes(newer[8..12].try_into().unwrap()) + 1;
    newer[8..12].copy_from_slice(&future.to_le_bytes());
    let skew = dir.join("newer.phast");
    let skew_str = skew.to_str().unwrap();
    std::fs::write(&skew, &newer).unwrap();
    for args in [
        vec!["tree", skew_str, "--source", "0"],
        vec!["serve", "--instance", skew_str, "--addr", "127.0.0.1:0", "--duration-ms", "100"],
    ] {
        let (_, stderr, ok) = run(bin, &args);
        assert!(!ok, "version-skewed store must be rejected ({args:?})");
        assert!(!stderr.contains("panicked"), "panic on version skew: {stderr}");
        assert!(
            stderr.contains("unsupported format version") && stderr.contains("error:"),
            "expected the typed version-skew error, got: {stderr}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_reports_missing_arguments() {
    let bin = env!("CARGO_BIN_EXE_phast_cli");
    let out = Command::new(bin)
        .args(["tree"])
        .output()
        .expect("binary should execute");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

/// Every bad-input path must print `error: ...` (with enough context to
/// act on) and exit non-zero — never panic. A panic would put
/// `RUST_BACKTRACE` chatter on stderr instead of a message.
#[test]
fn cli_error_paths_fail_cleanly() {
    let bin = env!("CARGO_BIN_EXE_phast_cli");
    let dir = std::env::temp_dir().join(format!("phast-cli-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let garbage = dir.join("garbage.gr");
    std::fs::write(&garbage, "p sp 5 5\nthis is not a dimacs arc line\n").unwrap();
    let garbage = garbage.to_str().unwrap();
    let gr = dir.join("ok.gr");
    let gr = gr.to_str().unwrap();
    let (_, stderr, ok) = run(
        bin,
        &["generate", "--vertices", "500", "--seed", "5", "-o", gr],
    );
    assert!(ok, "generate failed: {stderr}");

    // (args, fragments the error message must contain)
    let cases: Vec<(Vec<&str>, Vec<&str>)> = vec![
        // missing file, path in the message
        (vec!["stats", "/nonexistent/x.gr"], vec!["error:", "/nonexistent/x.gr"]),
        // unreadable DIMACS content, path in the message
        (vec!["stats", garbage], vec!["error:", "cannot parse", garbage]),
        // unknown flag is rejected, not ignored
        (
            vec!["query", gr, "--from", "0", "--to", "1", "--paht"],
            vec!["error:", "--paht", "--path"],
        ),
        // non-numeric flag value names the flag
        (
            vec!["query", gr, "--from", "zero", "--to", "1"],
            vec!["error:", "--from", "zero"],
        ),
        // out-of-range vertex names the flag and the bound
        (
            vec!["query", gr, "--from", "0", "--to", "999999"],
            vec!["error:", "--to", "out of range"],
        ),
        // bad serve configuration
        (vec!["serve", gr, "--k", "0"], vec!["error:", "--k"]),
        // unknown subcommand prints usage
        (vec!["frobnicate"], vec!["usage:"]),
    ];
    for (args, fragments) in cases {
        let (_, stderr, ok) = run(bin, &args);
        assert!(!ok, "`{args:?}` should fail");
        assert!(
            !stderr.contains("panicked"),
            "`{args:?}` panicked: {stderr}"
        );
        for frag in fragments {
            assert!(
                stderr.contains(frag),
                "`{args:?}` stderr missing `{frag}`: {stderr}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The perf-regression workflow end-to-end through the real binary:
/// `bench` emits a schema-versioned artifact covering all six engines
/// with full sample sets; a self-compare against that artifact passes;
/// and an injected slowdown (`PHAST_BENCH_SLOWDOWN`) flips the exit code
/// to failure, proving the CI gate can actually fire.
#[test]
fn cli_bench_artifact_baseline_and_injected_regression() {
    let bin = env!("CARGO_BIN_EXE_phast_cli");
    let dir = std::env::temp_dir().join(format!("phast-cli-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("BENCH_base.json");
    let base_str = base.to_str().unwrap();
    let cur = dir.join("BENCH_cur.json");
    let cur_str = cur.to_str().unwrap();

    // 1. Emit the artifact and check the schema essentials.
    let (stdout, stderr, ok) = run(
        bin,
        &["bench", "--samples", "5", "--warmup", "1", "--k", "8", "--out", base_str],
    );
    assert!(ok, "bench failed: {stderr}");
    assert!(stdout.contains("dijkstra_scalar"), "{stdout}");
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&base).unwrap()).unwrap();
    assert_eq!(v["schema_version"], 1);
    assert_eq!(v["scale"], 2000);
    let benches = v["benchmarks"].as_array().unwrap();
    assert!(benches.len() >= 6, "only {} benchmarks", benches.len());
    let names: Vec<&str> = benches
        .iter()
        .map(|b| b["name"].as_str().unwrap())
        .collect();
    for expect in [
        "dijkstra_scalar",
        "phast_single_tree",
        "phast_k8_scalar",
        "phast_par_k8",
        "gphast_k8",
        "serve_batch_k8",
        "rphast_select_r100",
        "rphast_sweep_r10",
        "rphast_sweep_r100",
        "rphast_sweep_r1000",
    ] {
        assert!(names.contains(&expect), "missing `{expect}` in {names:?}");
    }
    // The RPHAST acceptance claim: at |T| <= n/100 the restricted sweep
    // beats the full single-tree sweep (that is the point of building a
    // selection at all). Medians at this scale separate by a wide margin,
    // so this is not a flaky timing assertion.
    let median = |name: &str| {
        benches
            .iter()
            .find(|b| b["name"] == name)
            .unwrap_or_else(|| panic!("missing {name}"))["stats"]["median_ns"]
            .as_i64()
            .unwrap()
    };
    assert!(
        median("rphast_sweep_r100") < median("phast_single_tree"),
        "restricted sweep at |T|=n/100 ({}) not faster than full sweep ({})",
        median("rphast_sweep_r100"),
        median("phast_single_tree"),
    );
    assert!(
        median("rphast_sweep_r1000") < median("phast_single_tree"),
        "restricted sweep at |T|=n/1000 not faster than full sweep"
    );
    for b in benches {
        assert!(
            b["samples_ns"].as_array().unwrap().len() >= 5,
            "too few samples for {}",
            b["name"]
        );
        assert!(b["stats"]["median_ns"].as_i64().unwrap() > 0);
    }
    assert!(v["host"]["cores"].as_i64().unwrap() >= 1);
    assert!(!v["obs"]["metrics"].is_null(), "missing merged obs report");

    // 2. A fresh run compared against that baseline passes (generous
    //    threshold: the point is the plumbing, not the machine's jitter).
    let (stdout, stderr, ok) = run(
        bin,
        &[
            "bench", "--samples", "5", "--warmup", "1", "--k", "8", "--out", cur_str,
            "--baseline", base_str, "--threshold-pct", "400", "--mad-k", "40",
        ],
    );
    assert!(ok, "self-compare regressed: {stderr}\n{stdout}");
    assert!(stderr.contains("no regressions"), "{stderr}");

    // 3. The same compare with an injected 20x slowdown must fail and
    //    name the slowed benchmark.
    let (stdout, stderr, ok) = run_env(
        bin,
        &[
            "bench", "--samples", "5", "--warmup", "1", "--k", "8", "--out", cur_str,
            "--baseline", base_str, "--threshold-pct", "400", "--mad-k", "40",
        ],
        &[("PHAST_BENCH_SLOWDOWN", "phast_single_tree:20")],
    );
    assert!(!ok, "injected regression escaped the gate: {stdout}");
    assert!(
        stderr.contains("phast_single_tree") && stderr.contains("regress"),
        "{stderr}"
    );

    // 4. The gate also fires on a restricted benchmark: an injected
    //    slowdown on `rphast_sweep_r100` must fail the compare and name it.
    let (stdout, stderr, ok) = run_env(
        bin,
        &[
            "bench", "--samples", "5", "--warmup", "1", "--k", "8", "--out", cur_str,
            "--baseline", base_str, "--threshold-pct", "400", "--mad-k", "40",
        ],
        &[("PHAST_BENCH_SLOWDOWN", "rphast_sweep_r100:20")],
    );
    assert!(!ok, "injected restricted regression escaped the gate: {stdout}");
    assert!(
        stderr.contains("rphast_sweep_r100") && stderr.contains("regress"),
        "{stderr}"
    );

    // 5. A malformed knob fails fast instead of silently measuring nothing.
    let (_, stderr, ok) = run_env(
        bin,
        &["bench", "--samples", "5", "--warmup", "1", "--k", "8", "--out", cur_str],
        &[("PHAST_BENCH_SLOWDOWN", "nonsense")],
    );
    assert!(!ok);
    assert!(stderr.contains("PHAST_BENCH_SLOWDOWN"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `loadgen --smoke` is the acceptance check that batching engages under
/// concurrent load: it self-hosts a loopback server, drives it with 16
/// closed-loop clients, and fails unless some batch served >= 2 requests.
#[test]
fn loadgen_smoke_batches_under_concurrency() {
    let bin = env!("CARGO_BIN_EXE_loadgen");
    let (stdout, stderr, ok) = run(
        bin,
        &[
            "--vertices", "800", "--clients", "8", "--k", "8", "--window-ms", "2",
            "--duration-ms", "700", "--smoke", "--json",
        ],
    );
    assert!(ok, "loadgen smoke failed: {stderr}");
    assert!(stdout.contains("\"multi_batches\""), "{stdout}");
    assert!(stderr.contains("smoke ok"), "{stderr}");
}

/// `loadgen --inject-panic` is the supervision soak: a poisoned request is
/// fired mid-run at a live, concurrently-loaded service. The run fails
/// unless the worker restart registered and the service kept answering.
#[test]
fn loadgen_inject_panic_soak() {
    let bin = env!("CARGO_BIN_EXE_loadgen");
    let (stdout, stderr, ok) = run(
        bin,
        &[
            "--vertices", "800", "--clients", "4", "--k", "8", "--window-ms", "2",
            "--duration-ms", "700", "--inject-panic", "--json",
        ],
    );
    assert!(ok, "loadgen inject-panic soak failed: {stderr}");
    assert!(stderr.contains("soak ok"), "{stderr}");
    assert!(stdout.contains("\"worker_restarts\""), "{stdout}");
    assert!(stdout.contains("\"quarantined_requests\""), "{stdout}");
}
