//! Property tests for the harness's measurement primitives: the duration
//! formatters' unit boundaries and the `Timed`/`SampleStats` invariants
//! the `BENCH_*.json` schema leans on.

use phast_bench::report::{fmt_days, fmt_duration};
use phast_bench::timing::{time_per, Samples};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(256))]

    /// `fmt_duration` always picks exactly one unit, never prints a
    /// negative or empty string, and respects the unit thresholds:
    /// `>= 1 s` never renders as ms/µs, `< 1 ms` always renders as µs.
    #[test]
    fn fmt_duration_unit_boundaries(ns in 0u64..u64::MAX / 2) {
        let d = Duration::from_nanos(ns);
        let s = fmt_duration(d);
        let units = [" s", " ms", " µs"];
        prop_assert_eq!(
            units.iter().filter(|u| s.ends_with(*u)).count(),
            1,
            "no unique unit in `{}`",
            s
        );
        if d >= Duration::from_secs(1) {
            prop_assert!(s.ends_with(" s"), "{:?} -> `{}`", d, s);
        }
        if d < Duration::from_millis(1) {
            prop_assert!(s.ends_with(" µs"), "{:?} -> `{}`", d, s);
        }
        prop_assert!(!s.starts_with('-'));
    }

    /// `fmt_days` is always `d:hh:mm` with hours < 24, minutes < 60, and
    /// the fields recombine to the truncated total minutes.
    #[test]
    fn fmt_days_fields_recombine(secs in 0u64..10_000_000_000) {
        let s = fmt_days(Duration::from_secs(secs));
        let parts: Vec<u64> = s.split(':').map(|p| p.parse().unwrap()).collect();
        prop_assert_eq!(parts.len(), 3, "`{}`", s);
        let (days, hours, mins) = (parts[0], parts[1], parts[2]);
        prop_assert!(hours < 24 && mins < 60, "`{}`", s);
        prop_assert_eq!((days * 24 + hours) * 60 + mins, secs / 60, "`{}`", s);
    }

    /// `time_per` reports exactly `runs` runs and a per-run time that
    /// divides the total (within integer-division truncation).
    #[test]
    fn timed_per_run_divides_total(runs in 1usize..20) {
        let mut n = 0u64;
        let t = time_per(runs, |i| n += i as u64);
        prop_assert_eq!(t.runs, runs);
        let per = t.per_run();
        let recombined = per * (runs as u32);
        prop_assert!(per <= t.total);
        prop_assert!(recombined <= t.total);
        prop_assert!(t.total - recombined < Duration::from_nanos(runs as u64));
    }

    /// `SampleStats` invariants over arbitrary sample vectors:
    /// `min <= median <= max`, `median <= p95 <= max`, `min <= mean <= max`,
    /// and MAD never exceeds the full spread.
    #[test]
    fn sample_stats_invariants(ns in proptest::collection::vec(0u64..u64::MAX / 4, 1..60)) {
        let samples = Samples {
            warmup: 0,
            samples: ns.iter().map(|&n| Duration::from_nanos(n)).collect(),
        };
        let s = samples.stats();
        prop_assert_eq!(s.runs, ns.len());
        prop_assert_eq!(s.min_ns, *ns.iter().min().unwrap());
        prop_assert_eq!(s.max_ns, *ns.iter().max().unwrap());
        prop_assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        prop_assert!(s.median_ns <= s.p95_ns && s.p95_ns <= s.max_ns);
        prop_assert!(s.min_ns <= s.mean_ns && s.mean_ns <= s.max_ns);
        prop_assert!(s.mad_ns <= s.max_ns - s.min_ns);
        // The raw serialization matches the input order and length.
        prop_assert_eq!(samples.to_ns(), ns);
    }

    /// A constant series has zero spread in every statistic.
    #[test]
    fn constant_series_has_zero_spread(v in 0u64..1_000_000, len in 1usize..30) {
        let samples = Samples {
            warmup: 0,
            samples: vec![Duration::from_nanos(v); len],
        };
        let s = samples.stats();
        prop_assert_eq!(s.median_ns, v);
        prop_assert_eq!(s.p95_ns, v);
        prop_assert_eq!(s.mean_ns, v);
        prop_assert_eq!(s.mad_ns, 0);
    }
}
